//! The simulated peer network.
//!
//! §3.1: "Piazza consists of an overlay network of peers connected via the
//! Internet ... each peer can receive and process requests." The real
//! Internet is replaced (DESIGN.md §3) by an in-process overlay that
//! tracks exactly what the distributed system would pay: messages sent,
//! tuples shipped, peers contacted. Disjuncts of a reformulated query can
//! be evaluated on worker threads (`std::thread::scope` over the peers'
//! lock-protected catalogs), standing in for §3.1.2's peer-local query
//! processing.
//!
//! # Degraded execution
//!
//! Real peers "join and leave at will", so the fetch path is chaos-ready:
//! a seeded [`FaultPlan`] (see `revere_util::fault`) can down peers, drop
//! or flake messages, and charge latency; the network retries with capped
//! exponential backoff under a per-query [`QueryBudget`]. Whatever cannot
//! be fetched is *reported*, never silently skipped: every
//! [`QueryOutcome`] carries a [`CompletenessReport`] naming unreachable
//! peers, missing relations, and dropped disjuncts, so callers can
//! distinguish an empty answer from a degraded one. With the default
//! zero-fault plan the happy path is byte-identical to a perfect network.

use crate::durable::{self, CheckpointReport, PeerDisk, PeerRecovery};
use crate::peer::{split_qualified, Peer};
use crate::reformulate::{ReformulateOptions, ReformulationResult, Reformulator};
use crate::updategram::{apply_updategrams, derivation_deltas_readonly, gram_to_batch, Updategram};
use crate::views::{IvmStrategy, MaterializedView};
use revere_query::dataflow::{Circuit, DeltaBatch};
use revere_query::glav::GlavMapping;
use revere_query::plan::{plan_cq, q_error, Plan};
use revere_query::{parse_query, ConjunctiveQuery, ExecMode, Source, StepProfile, Term, UnionQuery};
use revere_storage::{row_deltas, Catalog, Lsn, RelSchema, Relation, SharedCatalog, Tuple};
use revere_util::fault::{Fate, FaultPlan, RetryPolicy};
use revere_util::obs::{names, Histogram, Obs, SpanHandle};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::str::FromStr;
use std::sync::Mutex;

/// The PDMS: peers plus the shared mapping graph.
#[derive(Debug)]
pub struct PdmsNetwork {
    peers: BTreeMap<String, Peer>,
    mappings: Vec<GlavMapping>,
    /// Reformulation configuration used for queries.
    pub options: ReformulateOptions,
    /// Fault schedule for the fetch path (default: the perfect network).
    pub faults: FaultPlan,
    /// Retry policy for failed remote fetches.
    pub retry: RetryPolicy,
    /// Per-query spend limits.
    pub budget: QueryBudget,
    /// Reuse reformulations and query plans across queries (default on).
    /// Turning it off makes every query plan from scratch — the baseline
    /// the cache-invalidation tests compare byte-for-byte against.
    pub caching: bool,
    /// Observability handle. [`Obs::disabled`] (the default) records
    /// nothing; an enabled handle collects per-query spans
    /// (reformulation, per-relation fetch, per-disjunct evaluation) and
    /// `pdms.*` metrics. Enabling it never changes answers.
    pub obs: Obs,
    /// The q-error threshold of the estimator feedback loop. After each
    /// completely-fetched (sequential) query, any executed plan whose
    /// observed max q-error exceeds this value has its cache entry
    /// evicted and its measured join selectivities written back into the
    /// owning peers' statistics (see [`PdmsNetwork::cache_epoch`] — the
    /// write shifts the epoch, so every cached plan re-plans against the
    /// new evidence). `None` disables feedback — the E15 ablation
    /// baseline. Well-calibrated plans never trigger it, so warm caches
    /// stay warm on workloads the estimator already gets right.
    pub replan_q_error: Option<f64>,
    /// Which evaluator executes planned disjuncts, on both the sequential
    /// and the parallel query paths. The engines are byte-identical in
    /// answers and counters (`tests/differential_vec.rs` gates it);
    /// [`ExecMode::Row`] keeps the historical per-tuple engine around as
    /// the ablation baseline for E18.
    pub exec_mode: ExecMode,
    /// Bumped on every membership or mapping-graph change; part of the
    /// cache validity epoch (peer data changes are caught separately via
    /// each peer catalog's stats epoch).
    topology_epoch: u64,
    /// Stable storage per durable peer (see [`PdmsNetwork::enable_durability`]).
    /// Peers without an entry lose everything on [`PdmsNetwork::restart_peer`]
    /// the way any in-memory store would — durability is opt-in.
    disks: BTreeMap<String, PeerDisk>,
    /// Continuous queries registered via [`PdmsNetwork::subscribe`].
    subs: BTreeMap<String, Subscription>,
    /// The merged base snapshot the subscription circuits were initialized
    /// against, kept in lockstep by [`PdmsNetwork::publish`] and
    /// [`PdmsNetwork::sync_durable_subscriptions`]. Built lazily at the
    /// first subscribe; `None` until then.
    subs_base: Option<Catalog>,
    /// Per-durable-peer journal positions already absorbed into
    /// `subs_base` (WAL change-data capture for mutations that bypass
    /// [`PdmsNetwork::publish`]).
    wal_cursors: BTreeMap<String, Lsn>,
    caches: Mutex<Caches>,
    /// Per-owner fetch vitals for the health monitor; see
    /// [`PdmsNetwork::peer_accounting`].
    accounting: Mutex<BTreeMap<String, PeerAccounting>>,
}

impl Default for PdmsNetwork {
    fn default() -> Self {
        PdmsNetwork {
            peers: BTreeMap::new(),
            mappings: Vec::new(),
            options: ReformulateOptions::default(),
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
            budget: QueryBudget::default(),
            caching: true,
            obs: Obs::disabled(),
            replan_q_error: Some(REPLAN_Q_ERROR_DEFAULT),
            exec_mode: ExecMode::default(),
            topology_epoch: 0,
            disks: BTreeMap::new(),
            subs: BTreeMap::new(),
            subs_base: None,
            wal_cursors: BTreeMap::new(),
            caches: Mutex::new(Caches::default()),
            accounting: Mutex::new(BTreeMap::new()),
        }
    }
}

/// Default [`PdmsNetwork::replan_q_error`] threshold: a plan whose worst
/// step misestimated cardinality by more than 4× in either direction is
/// considered mis-calibrated and triggers feedback + re-planning.
pub const REPLAN_Q_ERROR_DEFAULT: f64 = 4.0;

/// Per-owner fetch-path vitals, accumulated *unconditionally* — even
/// with [`Obs::disabled`] — so the health monitor (`crate::monitor`) can
/// scrape every overlay without the observability tax. All fields are
/// cumulative totals since construction; scrapers keep their own
/// previous snapshot and difference. Updated only for *remote* fetches
/// (local reads involve no network and say nothing about peer health).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeerAccounting {
    /// Fetch attempts aimed at this owner (first tries + retries).
    pub fetch_attempts: u64,
    /// Messages sent toward this owner (requests and its responses).
    pub messages_sent: u64,
    /// Messages the fault plan dropped on the way to/from this owner.
    pub messages_dropped: u64,
    /// Retries spent beyond first attempts.
    pub retries_spent: u64,
    /// Completeness gaps: fetches this owner never delivered.
    pub gaps_observed: u64,
    /// Round-trip latency (ticks) of each resolved fetch, delivered or
    /// timed out.
    pub latency: Histogram,
    /// Worst q-error observed across completely-fetched plans touching
    /// this owner's relations (0 until a plan has been profiled;
    /// sequential query path only, like the feedback loop itself).
    pub worst_q_error: f64,
}

/// Hit/miss counters for the network's reformulation and plan caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered with a cached reformulation.
    pub reformulation_hits: usize,
    /// Queries that had to reformulate from scratch.
    pub reformulation_misses: usize,
    /// Disjuncts executed under a cached plan.
    pub plan_hits: usize,
    /// Disjuncts planned from scratch.
    pub plan_misses: usize,
    /// Cached plans evicted by the q-error feedback loop.
    pub plan_evictions: usize,
}

impl fmt::Display for CacheStats {
    /// Canonical `key=value` line; [`CacheStats::from_str`] is the exact
    /// inverse.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reformulation_hits={} reformulation_misses={} plan_hits={} plan_misses={} \
             plan_evictions={}",
            self.reformulation_hits,
            self.reformulation_misses,
            self.plan_hits,
            self.plan_misses,
            self.plan_evictions,
        )
    }
}

impl FromStr for CacheStats {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = CacheStats::default();
        for (key, value) in kv_fields(s)? {
            let n: usize = value.parse().map_err(|_| format!("bad count in {key}={value}"))?;
            match key {
                "reformulation_hits" => out.reformulation_hits = n,
                "reformulation_misses" => out.reformulation_misses = n,
                "plan_hits" => out.plan_hits = n,
                "plan_misses" => out.plan_misses = n,
                "plan_evictions" => out.plan_evictions = n,
                other => return Err(format!("unknown CacheStats field {other:?}")),
            }
        }
        Ok(out)
    }
}

/// Split a canonical `k=v k=v ...` line into pairs.
fn kv_fields(s: &str) -> Result<Vec<(&str, &str)>, String> {
    s.split_whitespace()
        .map(|field| field.split_once('=').ok_or_else(|| format!("field {field:?} is not key=value")))
        .collect()
}

/// The epoch-guarded caches behind [`PdmsNetwork::query`]. Entries are
/// only served while `valid_for` equals the network's current
/// [`PdmsNetwork::cache_epoch`]; any membership, mapping, or peer-data
/// change shifts the epoch and the next lookup clears everything.
#[derive(Debug, Default)]
struct Caches {
    valid_for: u64,
    /// Keyed by options fingerprint + the query's exact textual form.
    /// NOT the rename-invariant canonical key: a reformulation carries
    /// the query's own head variables into every disjunct, so serving it
    /// for a merely-isomorphic query would change the answer schema.
    reformulations: HashMap<String, ReformulationResult>,
    /// Keyed by disjunct canonical key — plans *do* transfer across
    /// isomorphic disjuncts, because the executor re-projects from the
    /// query it is given ([`revere_query::eval_cq_bag_planned`]).
    plans: HashMap<String, Plan>,
    stats: CacheStats,
}

/// Per-query spend limits. `None` means unlimited (the default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Stop fetching once this many messages have been sent.
    pub max_messages: Option<usize>,
    /// Stop fetching once the simulated clock passes this many ticks.
    pub deadline_ticks: Option<u64>,
}

/// What a degraded query could and could not cover. All-empty (the
/// [`CompletenessReport::is_complete`] state) on the happy path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompletenessReport {
    /// Disjuncts in the reformulated union.
    pub disjuncts_total: usize,
    /// Disjuncts dropped because some body relation could not be staged.
    pub disjuncts_dropped: usize,
    /// Peers that could not be reached (down, lossy past retry, or gone).
    pub peers_unreachable: BTreeSet<String>,
    /// Referenced relations that could not be staged: unknown or departed
    /// owner, owner not storing the relation, or fetch failure.
    pub relations_missing: BTreeSet<String>,
    /// Retry attempts spent beyond each first try.
    pub retries: usize,
    /// Request messages lost in flight (includes sends to down peers).
    pub messages_dropped: usize,
    /// Simulated clock at the end of the fetch phase (latency + backoff).
    pub latency_ticks: u64,
    /// True when the message budget cut fetching short.
    pub budget_exhausted: bool,
    /// True when the deadline cut fetching short.
    pub deadline_exceeded: bool,
}

impl CompletenessReport {
    /// True when every disjunct was fully evaluated against fetched data.
    pub fn is_complete(&self) -> bool {
        self.disjuncts_dropped == 0
            && self.peers_unreachable.is_empty()
            && self.relations_missing.is_empty()
    }

    /// Fraction of disjuncts fully evaluated, in `[0, 1]` (1.0 for the
    /// degenerate empty union).
    pub fn coverage(&self) -> f64 {
        if self.disjuncts_total == 0 {
            1.0
        } else {
            (self.disjuncts_total - self.disjuncts_dropped) as f64 / self.disjuncts_total as f64
        }
    }
}

impl fmt::Display for CompletenessReport {
    /// Canonical single-line `key=value` serialization;
    /// [`CompletenessReport::from_str`] is the exact inverse. Set fields
    /// render comma-joined (peer and relation names never contain commas
    /// or whitespace in this workspace), empty sets as an empty value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let join = |set: &BTreeSet<String>| set.iter().cloned().collect::<Vec<_>>().join(",");
        write!(
            f,
            "disjuncts_total={} disjuncts_dropped={} peers_unreachable={} relations_missing={} \
             retries={} messages_dropped={} latency_ticks={} budget_exhausted={} deadline_exceeded={}",
            self.disjuncts_total,
            self.disjuncts_dropped,
            join(&self.peers_unreachable),
            join(&self.relations_missing),
            self.retries,
            self.messages_dropped,
            self.latency_ticks,
            self.budget_exhausted,
            self.deadline_exceeded,
        )
    }
}

impl FromStr for CompletenessReport {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let split_set = |v: &str| -> BTreeSet<String> {
            v.split(',').filter(|p| !p.is_empty()).map(str::to_string).collect()
        };
        let mut out = CompletenessReport::default();
        for (key, value) in kv_fields(s)? {
            let bad = || format!("bad value in {key}={value}");
            match key {
                "disjuncts_total" => out.disjuncts_total = value.parse().map_err(|_| bad())?,
                "disjuncts_dropped" => out.disjuncts_dropped = value.parse().map_err(|_| bad())?,
                "peers_unreachable" => out.peers_unreachable = split_set(value),
                "relations_missing" => out.relations_missing = split_set(value),
                "retries" => out.retries = value.parse().map_err(|_| bad())?,
                "messages_dropped" => out.messages_dropped = value.parse().map_err(|_| bad())?,
                "latency_ticks" => out.latency_ticks = value.parse().map_err(|_| bad())?,
                "budget_exhausted" => out.budget_exhausted = value.parse().map_err(|_| bad())?,
                "deadline_exceeded" => out.deadline_exceeded = value.parse().map_err(|_| bad())?,
                other => return Err(format!("unknown CompletenessReport field {other:?}")),
            }
        }
        Ok(out)
    }
}

/// The result of asking one peer a question.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The answers, in the querying peer's vocabulary.
    pub answers: Relation,
    /// Reformulation statistics.
    pub reformulation: ReformulationResult,
    /// Peers whose data actually contributed (had the needed relations).
    pub peers_contacted: BTreeSet<String>,
    /// Messages exchanged: one request + one response per contacted remote
    /// peer, per relation fetched (plus lost/retried requests under
    /// faults).
    pub messages: usize,
    /// Tuples shipped from remote peers to the querying peer.
    pub tuples_shipped: usize,
    /// What the answer covers and what it is missing.
    pub completeness: CompletenessReport,
}

/// A continuous query registered at a peer ([`PdmsNetwork::subscribe`]):
/// the query is reformulated once over the mapping graph, and each
/// evaluable disjunct is compiled either into a delta-dataflow
/// [`Circuit`] ([`IvmStrategy::Dataflow`], the default) or a counting
/// [`MaterializedView`] ([`IvmStrategy::Counting`], the ablation
/// baseline). Published updategrams re-fire only subscriptions whose
/// base relations the delta touches; everything else is a counted no-op.
#[derive(Debug)]
pub struct Subscription {
    /// Subscription name (unique per network).
    pub name: String,
    /// The peer the continuous query was posed at.
    pub at_peer: String,
    /// The query as posed, in that peer's own vocabulary.
    pub definition: ConjunctiveQuery,
    /// How the answer is maintained.
    pub strategy: IvmStrategy,
    /// Disjuncts in the reformulated union.
    pub disjuncts_total: usize,
    /// Disjuncts dropped at subscribe time (unreachable base relations).
    pub disjuncts_dropped: usize,
    /// Times a published delta incrementally refreshed this subscription.
    pub refreshes: usize,
    /// Published deltas that touched none of this subscription's base
    /// relations (no work beyond the affected-set check).
    pub skipped: usize,
    /// One circuit per evaluable disjunct (Dataflow strategy).
    circuits: Vec<Circuit>,
    /// One counting view per evaluable disjunct (Counting strategy).
    counting: Vec<MaterializedView>,
    /// Base relations the subscription reads — the affected set.
    relations: BTreeSet<String>,
}

impl Subscription {
    /// The base relations whose deltas re-fire this subscription.
    pub fn relations(&self) -> &BTreeSet<String> {
        &self.relations
    }

    /// The maintained answer under set semantics: the distinct union of
    /// every disjunct's current output, sorted.
    pub fn answers(&self) -> Relation {
        let mut schema: Option<RelSchema> = None;
        let mut rows: Vec<Tuple> = Vec::new();
        match self.strategy {
            IvmStrategy::Dataflow => {
                for c in &self.circuits {
                    let r = c.output_set();
                    schema.get_or_insert_with(|| r.schema.clone());
                    rows.extend(r.into_rows());
                }
            }
            IvmStrategy::Counting => {
                for v in &self.counting {
                    let r = v.as_relation();
                    schema.get_or_insert_with(|| r.schema.clone());
                    rows.extend(r.into_rows());
                }
            }
        }
        let schema = schema.unwrap_or_else(|| answer_schema(&self.definition));
        Relation::with_rows(schema, rows).distinct()
    }

    /// Join-work units spent across all circuits (0 under Counting, whose
    /// cost lives in the delta-query evaluations instead).
    pub fn work(&self) -> u64 {
        self.circuits.iter().map(|c| c.work).sum()
    }

    /// Distinct tuples held across all circuit arrangements — the state
    /// footprint the dataflow strategy pays for O(|Δ|) refreshes.
    pub fn arranged_tuples(&self) -> usize {
        self.circuits.iter().map(Circuit::arranged_tuples).sum()
    }
}

/// Answer schema for a subscription with no evaluable disjunct:
/// head-variable column names, `c{i}` for constant positions (the same
/// naming the evaluator uses).
fn answer_schema(q: &ConjunctiveQuery) -> RelSchema {
    let cols: Vec<String> = q
        .head
        .terms
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            Term::Var(v) => v.clone(),
            Term::Const(_) => format!("c{i}"),
        })
        .collect();
    RelSchema::text(
        q.head.relation.clone(),
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    )
}

/// What one [`PdmsNetwork::publish`] call did.
#[derive(Debug, Clone, Default)]
pub struct PublishReport {
    /// Subscriptions whose answers were incrementally refreshed.
    pub refreshed: Vec<String>,
    /// Subscriptions skipped because the delta touches none of their
    /// base relations.
    pub skipped: usize,
    /// Distinct output tuples whose derivation counts changed, summed
    /// over the refreshed subscriptions.
    pub output_changes: usize,
}

/// Internal result of the shared fetch phase.
struct Fetched {
    staging: Catalog,
    peers_contacted: BTreeSet<String>,
    messages: usize,
    tuples_shipped: usize,
    completeness: CompletenessReport,
}

impl PdmsNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a peer. Replaces any existing peer of the same name.
    pub fn add_peer(&mut self, peer: Peer) {
        self.topology_epoch += 1;
        self.peers.insert(peer.name.clone(), peer);
    }

    /// Remove a peer — "every member can join or leave at will" (§3.1).
    /// Mappings naming it stay in the graph; subsequent queries report the
    /// gap in their [`CompletenessReport`] instead of failing. Learned
    /// join selectivities that mention the departed peer's relations are
    /// purged from every remaining peer: that evidence can no longer be
    /// re-verified against live data, and a rejoining peer may return
    /// with entirely different content under the same names.
    pub fn remove_peer(&mut self, name: &str) -> Option<Peer> {
        self.topology_epoch += 1;
        let gone = self.peers.remove(name)?;
        self.disks.remove(name);
        self.wal_cursors.remove(name);
        let prefix = format!("{name}.");
        for p in self.peers.values() {
            p.storage.write(|c| c.purge_join_stats(|rel| rel.starts_with(&prefix)));
        }
        Some(gone)
    }

    /// Give `name` stable storage: attach a [`PeerDisk`]'s journal to its
    /// catalog (every subsequent mutation is logged) and take an initial
    /// checkpoint so pre-existing data is in the image. Idempotent; the
    /// returned disk handle survives crashes — keep it (or use
    /// [`PdmsNetwork::restart_peer`], which tracks it internally).
    pub fn enable_durability(&mut self, name: &str) -> Option<PeerDisk> {
        let peer = self.peers.get(name)?;
        let disk = self.disks.entry(name.to_string()).or_default().clone();
        peer.storage.write(|c| {
            if c.journal().is_none() {
                c.attach_journal(disk.journal());
            }
            durable::checkpoint(&disk, c, &[], &[]);
        });
        Some(disk)
    }

    /// The stable storage of a durable peer.
    pub fn disk(&self, name: &str) -> Option<&PeerDisk> {
        self.disks.get(name)
    }

    /// The durable-subscription sync cursor for `name`: journaled records
    /// with `lsn < cursor` have been absorbed into the subscription base
    /// (see [`PdmsNetwork::sync_durable_subscriptions`]). `None` until
    /// the peer has a cursor. The health monitor reads
    /// `journal.next_lsn() - cursor` as the inbox watermark lag.
    pub fn wal_cursor(&self, name: &str) -> Option<Lsn> {
        self.wal_cursors.get(name).copied()
    }

    /// Checkpoint a durable peer: write a fresh image and truncate its
    /// log (see [`crate::durable::checkpoint`]). `None` when the peer is
    /// unknown or not durable.
    pub fn checkpoint_peer(&self, name: &str) -> Option<CheckpointReport> {
        let peer = self.peers.get(name)?;
        let disk = self.disks.get(name)?;
        Some(peer.storage.write(|c| durable::checkpoint(disk, c, &[], &[])))
    }

    /// Crash + restart a durable peer: its in-memory state is dropped and
    /// rebuilt from stable storage (image + log-suffix replay). The
    /// peer's logical schema is configuration, not volatile state, so it
    /// survives the restart; the storage catalog is whatever the disk
    /// proves. `None` when the peer is unknown, not durable, or its image
    /// is corrupt (in which case the live peer is left untouched).
    pub fn restart_peer(&mut self, name: &str) -> Option<PeerRecovery> {
        if !self.peers.contains_key(name) {
            return None;
        }
        let disk = self.disks.get(name)?.clone();
        let recovered = durable::recover(&disk)?;
        self.topology_epoch += 1;
        let old = self.peers.remove(name).expect("membership checked above");
        self.peers.insert(
            old.name.clone(),
            Peer { name: old.name, schema: old.schema, storage: SharedCatalog::new(recovered.catalog) },
        );
        Some(recovered.report)
    }

    /// Add a mapping between two member peers, rejecting edges whose
    /// endpoints are not members (dynamically-built topologies can react
    /// instead of crashing).
    pub fn try_add_mapping(&mut self, mapping: GlavMapping) -> Result<(), String> {
        if !self.peers.contains_key(&mapping.source_peer) {
            return Err(format!("unknown source peer {}", mapping.source_peer));
        }
        if !self.peers.contains_key(&mapping.target_peer) {
            return Err(format!("unknown target peer {}", mapping.target_peer));
        }
        self.topology_epoch += 1;
        self.mappings.push(mapping);
        Ok(())
    }

    /// Add a mapping between two member peers.
    ///
    /// # Panics
    /// Panics if either endpoint is unknown — a mapping to a non-member is
    /// always a bug in test/bench setup. Use
    /// [`PdmsNetwork::try_add_mapping`] to handle it gracefully.
    pub fn add_mapping(&mut self, mapping: GlavMapping) {
        if let Err(e) = self.try_add_mapping(mapping) {
            panic!("{e}");
        }
    }

    /// Borrow a peer.
    pub fn peer(&self, name: &str) -> Option<&Peer> {
        self.peers.get(name)
    }

    /// Mutably borrow a peer. Conservatively treated as a topology change
    /// for cache purposes — the caller may swap the peer's entire storage,
    /// which the per-catalog stats epoch alone would not reliably detect.
    pub fn peer_mut(&mut self, name: &str) -> Option<&mut Peer> {
        if self.peers.contains_key(name) {
            self.topology_epoch += 1;
        }
        self.peers.get_mut(name)
    }

    /// Peer names.
    pub fn peer_names(&self) -> impl Iterator<Item = &str> {
        self.peers.keys().map(String::as_str)
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Number of mappings.
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// Pose a textual query at a peer. The query must use relations
    /// qualified with peer names (usually the local peer's).
    pub fn query_str(&self, at_peer: &str, query: &str) -> Result<QueryOutcome, String> {
        let q = parse_query(query).map_err(|e| e.to_string())?;
        self.query(at_peer, &q)
    }

    /// The current cache validity epoch: a deterministic mix of the
    /// topology epoch, the peer count, and every peer catalog's stats
    /// epoch (in `BTreeMap` order). Any membership change, mapping change,
    /// `peer_mut` access, or peer-data mutation — inserts, updategram
    /// application, `analyze` — shifts it, and cached entries computed
    /// under a different epoch are never served.
    pub fn cache_epoch(&self) -> u64 {
        let mut e = self.topology_epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        e = e.wrapping_mul(31).wrapping_add(self.peers.len() as u64);
        for p in self.peers.values() {
            e = e.wrapping_mul(31).wrapping_add(p.storage.epoch());
        }
        e
    }

    /// Snapshot the cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_caches().stats
    }

    /// Drop every cached reformulation and plan and zero the counters.
    pub fn clear_caches(&self) {
        let mut caches = self.lock_caches();
        *caches = Caches::default();
    }

    fn lock_caches(&self) -> std::sync::MutexGuard<'_, Caches> {
        // A panic while holding the lock leaves plain data; recover it.
        self.caches.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Snapshot the per-owner fetch vitals (cumulative since
    /// construction). The map is keyed by owner peer name and only ever
    /// gains entries for peers that have been fetched from remotely.
    pub fn peer_accounting(&self) -> BTreeMap<String, PeerAccounting> {
        self.lock_accounting().clone()
    }

    fn lock_accounting(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, PeerAccounting>> {
        self.accounting.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Reformulate through the cache. On an epoch mismatch the whole cache
    /// is cleared first, so a stale entry can never be served. The second
    /// return is the cache verdict ("hit" / "miss" / "bypass"), recorded
    /// on the query's reformulation span.
    fn reformulate_cached(&self, q: &ConjunctiveQuery) -> (ReformulationResult, &'static str) {
        if !self.caching {
            let r = Reformulator::new(self.mappings.clone(), self.options.clone()).reformulate(q);
            return (r, "bypass");
        }
        let epoch = self.cache_epoch();
        let key = format!("{:?}|{q}", self.options);
        {
            let mut caches = self.lock_caches();
            if caches.valid_for != epoch {
                caches.reformulations.clear();
                caches.plans.clear();
                caches.valid_for = epoch;
            }
            if let Some(r) = caches.reformulations.get(&key).cloned() {
                caches.stats.reformulation_hits += 1;
                return (r, "hit");
            }
            caches.stats.reformulation_misses += 1;
        }
        // Reformulation can be expensive; don't hold the lock for it.
        let r = Reformulator::new(self.mappings.clone(), self.options.clone()).reformulate(q);
        let mut caches = self.lock_caches();
        if caches.valid_for == epoch {
            caches.reformulations.insert(key, r.clone());
        }
        (r, "miss")
    }

    /// Plan a disjunct through the cache. `cacheable` is false when the
    /// fetch phase was incomplete: a plan costed against partial staging
    /// data executes correctly but would poison the cache with statistics
    /// from a degraded view of the network.
    fn plan_for(
        &self,
        d: &ConjunctiveQuery,
        staging: &Catalog,
        epoch: u64,
        cacheable: bool,
    ) -> (Plan, &'static str) {
        if !self.caching {
            return (plan_cq(d, staging), "bypass");
        }
        {
            let mut caches = self.lock_caches();
            if caches.valid_for == epoch {
                if let Some(p) = caches.plans.get(&d.canonical_key()).cloned() {
                    if p.applies_to(d) {
                        caches.stats.plan_hits += 1;
                        return (p, "hit");
                    }
                }
            }
            caches.stats.plan_misses += 1;
        }
        let p = plan_cq(d, staging);
        if cacheable {
            let mut caches = self.lock_caches();
            if caches.valid_for == epoch {
                caches.plans.insert(p.key().to_string(), p.clone());
            }
        }
        (p, "miss")
    }

    /// Copy the owner's learned join-overlap statistics for `rel` into a
    /// staging catalog, so planning against the staged snapshot sees the
    /// same evidence the feedback loop recorded at the peer.
    fn stage_join_stats(staging: &mut Catalog, peer: &Peer, rel: &str) {
        let learned = peer.storage.read(|c| c.join_stats().mentioning(rel));
        if !learned.is_empty() {
            staging.absorb_join_stats(&learned);
        }
    }

    /// The estimator feedback loop (sequential query path only — worker
    /// threads would make write order, and thus last-write-wins learned
    /// values, scheduling-dependent). When a completely-fetched plan's
    /// observed max q-error exceeds [`PdmsNetwork::replan_q_error`]:
    /// evict exactly that plan's cache entry, and write each
    /// unambiguous (single-pair) join step's measured selectivity
    /// `bindings / (probes · build_rows)` into the owning peers'
    /// catalogs. The write bumps those catalogs' stats epochs only when
    /// the learned value materially changed, which in turn shifts
    /// [`PdmsNetwork::cache_epoch`] — cached plans can never outlive the
    /// observations that justified them.
    fn feed_back(&self, plan: &Plan, profiles: &[StepProfile]) {
        let max_q = plan
            .steps
            .iter()
            .zip(profiles)
            .map(|(s, p)| q_error(s.est_bindings, p.bindings))
            .fold(1.0, f64::max);
        self.note_worst_q_error(plan, max_q);
        let Some(threshold) = self.replan_q_error else { return };
        if max_q <= threshold {
            return;
        }
        self.obs.inc(names::PDMS_FEEDBACK_PLANS_REPLANNED, 1);
        if self.caching {
            let mut caches = self.lock_caches();
            if caches.plans.remove(plan.key()).is_some() {
                caches.stats.plan_evictions += 1;
            }
        }
        for (s, p) in plan.steps.iter().zip(profiles) {
            // Only steps with exactly one join pair attribute cleanly; a
            // multi-pair step's selectivity is a product we can't split.
            if s.join_pairs.len() != 1 || p.probes == 0 || p.build_rows == 0 {
                continue;
            }
            let pair = &s.join_pairs[0];
            let sel = p.bindings as f64 / (p.probes as f64 * p.build_rows as f64);
            let mut owners: Vec<&str> = Vec::new();
            for rel in [s.relation.as_str(), pair.other_relation.as_str()] {
                if let Some((owner, _)) = split_qualified(rel) {
                    if !owners.contains(&owner) {
                        owners.push(owner);
                    }
                }
            }
            for owner in owners {
                if let Some(peer) = self.peers.get(owner) {
                    let changed = peer.storage.write(|c| {
                        c.note_join_overlap(
                            &s.relation,
                            pair.col,
                            &pair.other_relation,
                            pair.other_col,
                            sel,
                        )
                    });
                    if changed {
                        self.obs.inc(names::PDMS_FEEDBACK_OVERLAPS_OBSERVED, 1);
                    }
                }
            }
        }
    }

    /// Record `max_q` as the worst observed q-error for every owner whose
    /// relations the profiled plan touched — a monitor vital, not part of
    /// the feedback write-back (it is recorded below the replan
    /// threshold too, and even when feedback is disabled).
    fn note_worst_q_error(&self, plan: &Plan, max_q: f64) {
        let mut owners: Vec<&str> = Vec::new();
        for s in &plan.steps {
            if let Some((owner, _)) = split_qualified(&s.relation) {
                if !owners.contains(&owner) {
                    owners.push(owner);
                }
            }
        }
        if owners.is_empty() {
            return;
        }
        let mut acct = self.lock_accounting();
        for owner in owners {
            let a = acct.entry(owner.to_string()).or_default();
            if max_q > a.worst_q_error {
                a.worst_q_error = max_q;
            }
        }
    }

    /// Fetch phase, shared by [`PdmsNetwork::query`] and
    /// [`PdmsNetwork::query_parallel`]: snapshot every referenced relation
    /// that survives the network weather, accounting for every message,
    /// retry, and gap along the way.
    fn fetch_phase(&self, at_peer: &str, union: &UnionQuery, parent: &SpanHandle) -> Fetched {
        let mut f = Fetched {
            staging: Catalog::new(),
            peers_contacted: BTreeSet::new(),
            messages: 0,
            tuples_shipped: 0,
            completeness: CompletenessReport::default(),
        };
        let mut clock = 0u64;
        let mut fetched: BTreeSet<String> = BTreeSet::new();
        for d in &union.disjuncts {
            for a in &d.body {
                if !fetched.insert(a.relation.clone()) {
                    continue;
                }
                let span = parent.child("pdms.fetch");
                span.set("relation", &a.relation);
                // Per-relation accounting deltas, stamped on the span when
                // the fetch resolves.
                let msg0 = f.messages;
                let dropped0 = f.completeness.messages_dropped;
                let retries0 = f.completeness.retries;
                let clock0 = clock;
                let Some((owner, _)) = split_qualified(&a.relation) else {
                    // Unqualified relations have no owner to ask.
                    f.completeness.relations_missing.insert(a.relation.clone());
                    span.set("outcome", "unqualified");
                    continue;
                };
                span.set("owner", owner);
                let Some(peer) = self.peers.get(owner) else {
                    // Unknown or departed owner: the gap is reported, not
                    // silently absorbed into a smaller answer.
                    f.completeness.relations_missing.insert(a.relation.clone());
                    f.completeness.peers_unreachable.insert(owner.to_string());
                    span.set("outcome", "owner_gone");
                    continue;
                };
                if owner == at_peer {
                    // Local data: no network involved.
                    match peer.snapshot(&a.relation) {
                        Some(rel) => {
                            f.peers_contacted.insert(owner.to_string());
                            span.set("outcome", "local");
                            span.set("tuples", rel.len());
                            f.staging.register(rel);
                            Self::stage_join_stats(&mut f.staging, peer, &a.relation);
                        }
                        None => {
                            f.completeness.relations_missing.insert(a.relation.clone());
                            span.set("outcome", "local_missing");
                        }
                    }
                    continue;
                }
                // The overlay knows each peer's advertised schema: a peer
                // that does not store the relation is never asked (and the
                // gap is recorded).
                if !peer.stores(&a.relation) {
                    f.completeness.relations_missing.insert(a.relation.clone());
                    span.set("outcome", "not_advertised");
                    continue;
                }
                // Remote fetch under the fault plan, with retry/backoff
                // and the per-query budget.
                let mut delivered = false;
                let mut attempts = 0u32;
                for attempt in 0..self.retry.attempts() {
                    if let Some(max) = self.budget.max_messages {
                        if f.messages >= max {
                            f.completeness.budget_exhausted = true;
                            span.set("budget_exhausted", true);
                            break;
                        }
                    }
                    if let Some(deadline) = self.budget.deadline_ticks {
                        if clock >= deadline {
                            f.completeness.deadline_exceeded = true;
                            span.set("deadline_exceeded", true);
                            break;
                        }
                    }
                    attempts = attempt + 1;
                    if attempt > 0 {
                        f.completeness.retries += 1;
                    }
                    if self.faults.is_down_at(owner, clock) {
                        // Request into the void; wait out the timeout.
                        f.messages += 1;
                        f.completeness.messages_dropped += 1;
                        let wait = self.retry.backoff(attempt);
                        clock += wait;
                        self.obs.advance(wait);
                        continue;
                    }
                    match self.faults.fate(owner, &a.relation, attempt) {
                        Fate::Dropped => {
                            f.messages += 1;
                            f.completeness.messages_dropped += 1;
                            let wait = self.retry.backoff(attempt);
                            clock += wait;
                            self.obs.advance(wait);
                        }
                        Fate::Flaky => {
                            // Transient error response: request + error.
                            f.messages += 2;
                            let wait = self.retry.backoff(attempt);
                            clock += wait;
                            self.obs.advance(wait);
                        }
                        Fate::Delivered { latency } => {
                            f.messages += 2;
                            clock += latency;
                            self.obs.advance(latency);
                            if let Some(rel) = peer.snapshot(&a.relation) {
                                f.peers_contacted.insert(owner.to_string());
                                f.tuples_shipped += rel.len();
                                span.set("tuples", rel.len());
                                f.staging.register(rel);
                                Self::stage_join_stats(&mut f.staging, peer, &a.relation);
                            }
                            delivered = true;
                            break;
                        }
                    }
                }
                if !delivered {
                    f.completeness.relations_missing.insert(a.relation.clone());
                    f.completeness.peers_unreachable.insert(owner.to_string());
                    self.obs.inc(names::PDMS_FETCH_GAPS_OBSERVED, 1);
                }
                {
                    // Monitor vitals, kept even when obs is disabled: the
                    // adds are commutative, so the totals are identical no
                    // matter how concurrent queries interleave.
                    let mut acct = self.lock_accounting();
                    let a = acct.entry(owner.to_string()).or_default();
                    a.fetch_attempts += attempts as u64;
                    a.messages_sent += (f.messages - msg0) as u64;
                    a.messages_dropped += (f.completeness.messages_dropped - dropped0) as u64;
                    a.retries_spent += (f.completeness.retries - retries0) as u64;
                    if !delivered {
                        a.gaps_observed += 1;
                    }
                    a.latency.observe(clock - clock0);
                }
                if span.is_recording() {
                    span.set("outcome", if delivered { "delivered" } else { "unreachable" });
                    span.set("attempts", attempts);
                    span.set("messages", f.messages - msg0);
                    span.set("dropped", f.completeness.messages_dropped - dropped0);
                    span.set("retries", f.completeness.retries - retries0);
                    span.set("latency_ticks", clock - clock0);
                }
                self.obs.inc(names::PDMS_FETCH_MESSAGES_SENT, (f.messages - msg0) as u64);
                self.obs.inc(names::PDMS_FETCH_MESSAGES_DROPPED, (f.completeness.messages_dropped - dropped0) as u64);
                self.obs.inc(names::PDMS_FETCH_RETRIES_SPENT, (f.completeness.retries - retries0) as u64);
                self.obs.observe(names::PDMS_FETCH_LATENCY_TICKS, clock - clock0);
            }
        }
        f.completeness.latency_ticks = clock;
        f.completeness.disjuncts_total = union.disjuncts.len();
        f.completeness.disjuncts_dropped = union
            .disjuncts
            .iter()
            .filter(|d| d.body.iter().any(|a| f.staging.get(&a.relation).is_none()))
            .count();
        f
    }

    /// Pose a parsed query at a peer: reformulate over the mapping graph,
    /// fetch the needed relations (riding out whatever faults the plan
    /// injects), evaluate the union over what arrived.
    pub fn query(&self, at_peer: &str, q: &ConjunctiveQuery) -> Result<QueryOutcome, String> {
        if !self.peers.contains_key(at_peer) {
            return Err(format!("unknown peer {at_peer:?}"));
        }
        let root = self.obs.span("pdms.query");
        root.set("peer", at_peer);
        root.set("query", q);
        let epoch = self.cache_epoch();
        let rspan = root.child("pdms.reformulate");
        let (reformulation, verdict) = self.reformulate_cached(q);
        rspan.set("cache", verdict);
        rspan.set("disjuncts", reformulation.union.disjuncts.len());
        rspan.finish();
        let fetched = self.fetch_phase(at_peer, &reformulation.union, &root);
        let cacheable = fetched.completeness.is_complete();

        // Evaluate disjuncts (those whose relations are all staged),
        // each under a cached-or-fresh plan.
        let answers = revere_query::eval_union_with(&reformulation.union, &fetched.staging, |d, s| {
            let span = root.child("pdms.eval.disjunct");
            if span.is_recording() {
                // The canonical form, not `d` itself: reformulation mints
                // fresh variable names from a process-wide counter, so the
                // raw text varies run to run while the canonical key is
                // byte-stable — the golden-trace contract needs the latter.
                span.set("disjunct", d.canonical_key());
            }
            let (plan, verdict) = self.plan_for(d, s, epoch, cacheable);
            span.set("plan_cache", verdict);
            let r = revere_query::eval_cq_bag_profiled_obs_mode(
                d,
                &plan,
                s,
                &self.obs,
                &span,
                self.exec_mode,
            )
                .map(|(r, profiles)| {
                    // Feed actuals back only when the fetch was complete:
                    // a partial staging would teach the estimator that
                    // missing data means empty joins.
                    if cacheable {
                        self.feed_back(&plan, &profiles);
                    }
                    r.distinct()
                });
            if let Ok(rel) = &r {
                span.set("answers", rel.len());
            }
            r
        })
        .map_err(|e| e.to_string())?;
        root.set("answers", answers.len());
        root.set("complete", fetched.completeness.is_complete());
        Ok(QueryOutcome {
            answers,
            reformulation,
            peers_contacted: fetched.peers_contacted,
            messages: fetched.messages,
            tuples_shipped: fetched.tuples_shipped,
            completeness: fetched.completeness,
        })
    }

    /// Parallel variant: evaluate each disjunct on its own scoped thread.
    /// Same answers, stats, and completeness as [`PdmsNetwork::query`] —
    /// the fetch phase (and hence the fault schedule) is shared, and only
    /// disjunct evaluation fans out.
    pub fn query_parallel(&self, at_peer: &str, q: &ConjunctiveQuery) -> Result<QueryOutcome, String> {
        if !self.peers.contains_key(at_peer) {
            return Err(format!("unknown peer {at_peer:?}"));
        }
        let root = self.obs.span("pdms.query_parallel");
        root.set("peer", at_peer);
        root.set("query", q);
        let epoch = self.cache_epoch();
        let rspan = root.child("pdms.reformulate");
        let (reformulation, verdict) = self.reformulate_cached(q);
        rspan.set("cache", verdict);
        rspan.set("disjuncts", reformulation.union.disjuncts.len());
        rspan.finish();
        let fetched = self.fetch_phase(at_peer, &reformulation.union, &root);
        let cacheable = fetched.completeness.is_complete();

        let union = &reformulation.union;
        let staging = &fetched.staging;
        // Workers record no spans: span order would depend on thread
        // scheduling and break trace determinism. Metrics counters *are*
        // commutative, so the per-step `query.eval.*` accounting (incl.
        // the `step_bindings` histogram) is emitted here exactly as on
        // the sequential path — `tests/trace_obs.rs` asserts the parity.
        let results: Vec<Option<Relation>> = std::thread::scope(|s| {
            let handles: Vec<_> = union
                .disjuncts
                .iter()
                .map(|d| {
                    s.spawn(move || {
                        let (plan, _) = self.plan_for(d, staging, epoch, cacheable);
                        revere_query::eval_cq_bag_planned_mode(
                            d,
                            &plan,
                            staging,
                            self.exec_mode,
                            &self.obs,
                        )
                        .map(|r| r.distinct())
                        .ok()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("disjunct worker panicked")).collect()
        });
        // Joining in spawn order already fixes the merge order, and
        // `distinct()` sorts and dedups — so the final row order is a pure
        // function of the query, independent of thread scheduling, and
        // identical to the sequential `eval_union` path's normalization.
        let mut merged: Option<Relation> = None;
        for r in results.into_iter().flatten() {
            merged = Some(match merged {
                None => r,
                Some(m) => {
                    let schema = m.schema.clone();
                    let mut rows = m.into_rows();
                    rows.extend(r.into_rows());
                    Relation::with_rows(schema, rows)
                }
            });
        }
        let answers = match merged {
            Some(m) => m.distinct(),
            // Every disjunct dropped: fall back to eval_union for the
            // correctly-shaped empty relation.
            None => revere_query::eval_union(union, staging).map_err(|e| e.to_string())?,
        };
        root.set("answers", answers.len());
        root.set("complete", fetched.completeness.is_complete());
        Ok(QueryOutcome {
            answers,
            reformulation,
            peers_contacted: fetched.peers_contacted,
            messages: fetched.messages,
            tuples_shipped: fetched.tuples_shipped,
            completeness: fetched.completeness,
        })
    }

    /// `EXPLAIN ANALYZE` for a query posed at a peer: reformulate and
    /// fetch exactly as [`PdmsNetwork::query`] would, then render each
    /// disjunct's plan with estimated vs measured per-step cardinalities
    /// and q-error (see [`revere_query::plan::explain_analyze`]).
    /// Disjuncts that cannot be evaluated against the staged data are
    /// reported inline rather than dropped.
    pub fn explain_analyze(&self, at_peer: &str, q: &ConjunctiveQuery) -> Result<String, String> {
        if !self.peers.contains_key(at_peer) {
            return Err(format!("unknown peer {at_peer:?}"));
        }
        let (reformulation, _) = self.reformulate_cached(q);
        let fetched = self.fetch_phase(at_peer, &reformulation.union, &SpanHandle::none());
        let mut out = format!(
            "explain analyze at {at_peer}: {q}\n{} disjunct(s), fetch {}\n",
            reformulation.union.disjuncts.len(),
            fetched.completeness,
        );
        for (i, d) in reformulation.union.disjuncts.iter().enumerate() {
            out.push_str(&format!("disjunct {}: {d}\n", i + 1));
            match revere_query::plan::explain_analyze(d, &fetched.staging) {
                Ok(ea) => out.push_str(&ea.to_string()),
                Err(e) => out.push_str(&format!("  (not evaluable: {e})\n")),
            }
        }
        Ok(out)
    }

    /// `EXPLAIN ANALYZE` for a textual query (see
    /// [`PdmsNetwork::explain_analyze`]).
    pub fn explain_analyze_str(&self, at_peer: &str, query: &str) -> Result<String, String> {
        let q = parse_query(query).map_err(|e| e.to_string())?;
        self.explain_analyze(at_peer, &q)
    }

    /// Expose the whole network as a query [`Source`] (used by tests and
    /// by view refresh, which conceptually runs "at" a peer with access to
    /// fetched snapshots).
    pub fn snapshot_all(&self) -> Catalog {
        let mut c = Catalog::new();
        for p in self.peers.values() {
            p.storage.read(|cat| {
                for name in cat.names() {
                    if let Some(r) = cat.get(name) {
                        c.register(r.clone());
                    }
                }
                c.absorb_join_stats(cat.join_stats());
            });
        }
        c
    }

    // -----------------------------------------------------------------
    // Continuous queries (delta-dataflow IVM over the overlay)
    // -----------------------------------------------------------------

    /// Build the mirrored base snapshot on first use, and start every
    /// durable peer's WAL cursor at its current tail (the snapshot
    /// already contains everything journaled so far).
    fn ensure_subs_base(&mut self) {
        if self.subs_base.is_some() {
            return;
        }
        self.subs_base = Some(self.snapshot_all());
        for (name, disk) in &self.disks {
            self.wal_cursors.insert(name.clone(), disk.journal().next_lsn());
        }
    }

    /// Register a continuous query at a peer. The query is reformulated
    /// over the mapping graph exactly like [`PdmsNetwork::query`]; each
    /// evaluable disjunct is compiled per `strategy` and initialized
    /// against the current network contents, so [`Subscription::answers`]
    /// immediately equals what a one-shot query would return. Disjuncts
    /// referencing unreachable relations are dropped and counted.
    /// Replaces any existing subscription of the same name.
    pub fn subscribe(
        &mut self,
        at_peer: &str,
        name: &str,
        query: &str,
        strategy: IvmStrategy,
    ) -> Result<&Subscription, String> {
        if !self.peers.contains_key(at_peer) {
            return Err(format!("unknown peer {at_peer:?}"));
        }
        let q = parse_query(query).map_err(|e| e.to_string())?;
        // Absorb pending durable-peer mutations first, so the circuits
        // initialize against the same state later deltas are signed from.
        self.sync_durable_subscriptions();
        self.ensure_subs_base();
        let (reformulation, _) = self.reformulate_cached(&q);
        let base = self.subs_base.as_ref().expect("ensured above");
        let mut sub = Subscription {
            name: name.to_string(),
            at_peer: at_peer.to_string(),
            definition: q,
            strategy,
            disjuncts_total: reformulation.union.disjuncts.len(),
            disjuncts_dropped: 0,
            refreshes: 0,
            skipped: 0,
            circuits: Vec::new(),
            counting: Vec::new(),
            relations: BTreeSet::new(),
        };
        for (i, d) in reformulation.union.disjuncts.iter().enumerate() {
            if d.body.iter().any(|a| base.get(&a.relation).is_none()) {
                sub.disjuncts_dropped += 1;
                continue;
            }
            match strategy {
                IvmStrategy::Dataflow => {
                    let plan = plan_cq(d, base);
                    let mut circuit = Circuit::new(d, &plan).map_err(|e| e.to_string())?;
                    if circuit.init_full(base).is_err() {
                        // Arity mismatch against staged data: same drop
                        // the one-shot evaluator would perform.
                        sub.disjuncts_dropped += 1;
                        continue;
                    }
                    sub.relations.extend(circuit.relations());
                    sub.circuits.push(circuit);
                }
                IvmStrategy::Counting => {
                    let mut view = MaterializedView::new(format!("{name}#{i}"), d.clone());
                    if view.refresh_full(base).is_err() {
                        sub.disjuncts_dropped += 1;
                        continue;
                    }
                    sub.relations.extend(d.body.iter().map(|a| a.relation.clone()));
                    sub.counting.push(view);
                }
            }
        }
        self.subs.insert(name.to_string(), sub);
        Ok(self.subs.get(name).expect("just inserted"))
    }

    /// Remove a subscription, returning its final state.
    pub fn unsubscribe(&mut self, name: &str) -> Option<Subscription> {
        self.subs.remove(name)
    }

    /// Borrow a subscription.
    pub fn subscription(&self, name: &str) -> Option<&Subscription> {
        self.subs.get(name)
    }

    /// Registered subscription names.
    pub fn subscription_names(&self) -> impl Iterator<Item = &str> {
        self.subs.keys().map(String::as_str)
    }

    /// Apply an updategram to the relation's owning peer and push the
    /// resulting delta through every affected subscription. The delta is
    /// signed against the pre-state (a delete retracts every stored copy
    /// of a row, duplicate inserts each count), applied to the owner's
    /// catalog and the mirrored base, and re-fires *only* subscriptions
    /// whose base relations it touches — everyone else pays one set
    /// lookup. Errors when the relation is unqualified, its owner is not
    /// a member, or the owner does not store it.
    pub fn publish(&mut self, gram: &Updategram) -> Result<PublishReport, String> {
        let Some((owner, _)) = split_qualified(&gram.relation) else {
            return Err(format!("relation {:?} is not peer-qualified", gram.relation));
        };
        let owner = owner.to_string();
        let Some(peer) = self.peers.get(&owner) else {
            return Err(format!("unknown peer {owner:?}"));
        };
        if !peer.storage.read(|c| c.get(&gram.relation).is_some()) {
            return Err(format!("peer {owner:?} does not store {:?}", gram.relation));
        }
        // Catch up on out-of-band durable-peer mutations so this gram's
        // deltas are signed against the state subscribers actually hold.
        self.sync_durable_subscriptions();
        self.ensure_subs_base();
        let base = self.subs_base.as_ref().expect("ensured above");
        let batch = gram_to_batch(base, gram);
        // The counting ablation differences its delta queries against the
        // same pre-state the dataflow batch was signed from.
        let mut counting: BTreeMap<String, Vec<Vec<(Tuple, i64)>>> = BTreeMap::new();
        for (name, sub) in &self.subs {
            if sub.strategy != IvmStrategy::Counting
                || !sub.relations.contains(&gram.relation)
            {
                continue;
            }
            let mut per_view = Vec::new();
            for v in &sub.counting {
                per_view.push(
                    derivation_deltas_readonly(base, &v.definition, gram)
                        .map_err(|e| e.to_string())?,
                );
            }
            counting.insert(name.clone(), per_view);
        }
        self.peers
            .get(&owner)
            .expect("membership checked above")
            .storage
            .write(|c| apply_updategrams(c, std::slice::from_ref(gram)));
        // The application above may itself have journaled records on a
        // durable owner; advance the cursor past them — their effect is
        // exactly this batch, which is pushed below.
        if let Some(disk) = self.disks.get(&owner) {
            self.wal_cursors.insert(owner.clone(), disk.journal().next_lsn());
        }
        apply_updategrams(
            self.subs_base.as_mut().expect("ensured above"),
            std::slice::from_ref(gram),
        );
        Ok(self.refire(&batch, Some(&mut counting)))
    }

    /// Absorb durable peers' journal suffixes into the subscription layer:
    /// mutations made *directly* on a durable peer's catalog (bypassing
    /// [`PdmsNetwork::publish`]) are recovered from its WAL via per-peer
    /// LSN cursors, replayed into the mirrored base as signed row deltas,
    /// and pushed through affected subscriptions. Counting subscriptions
    /// have no updategram to difference on this path and fall back to a
    /// full recompute. Returns the number of distinct changed rows
    /// absorbed. No-op (0) before the first subscription.
    pub fn sync_durable_subscriptions(&mut self) -> usize {
        if self.subs_base.is_none() {
            return 0;
        }
        let mut changed = 0;
        let names: Vec<String> = self.disks.keys().cloned().collect();
        for name in names {
            let journal = self.disks.get(&name).expect("listed above").journal();
            let cursor = self.wal_cursors.get(&name).copied().unwrap_or(0);
            let records: Vec<_> =
                journal.records().into_iter().filter(|(l, _)| *l >= cursor).collect();
            self.wal_cursors.insert(name.clone(), journal.next_lsn());
            if records.is_empty() {
                continue;
            }
            let deltas = row_deltas(&records, self.subs_base.as_mut().expect("checked above"));
            let mut batch = DeltaBatch::new();
            for (rel, row, w) in deltas {
                batch.add(rel, row, w);
            }
            if batch.is_empty() {
                continue;
            }
            changed += batch.len();
            self.refire(&batch, None);
        }
        changed
    }

    /// Push one signed batch through every affected subscription.
    /// `counting` carries the ablation's pre-computed delta-query results
    /// keyed by subscription name; `None` (the WAL-sync path, which has
    /// no gram to difference) makes counting subscriptions recompute.
    fn refire(
        &mut self,
        batch: &DeltaBatch,
        mut counting: Option<&mut BTreeMap<String, Vec<Vec<(Tuple, i64)>>>>,
    ) -> PublishReport {
        let mut report = PublishReport::default();
        let base = &self.subs_base;
        for (name, sub) in self.subs.iter_mut() {
            if !batch.relations().any(|r| sub.relations.contains(r)) {
                sub.skipped += 1;
                report.skipped += 1;
                continue;
            }
            match sub.strategy {
                IvmStrategy::Dataflow => {
                    for c in &mut sub.circuits {
                        report.output_changes += c.push(batch).len();
                    }
                }
                IvmStrategy::Counting => {
                    match counting.as_deref_mut().and_then(|m| m.remove(name)) {
                        Some(per_view) => {
                            for (v, deltas) in sub.counting.iter_mut().zip(per_view) {
                                report.output_changes += deltas.len();
                                v.apply_derivation_delta(deltas);
                            }
                        }
                        None => {
                            if let Some(base) = base {
                                for v in &mut sub.counting {
                                    // Stale-on-error mirrors the one-shot
                                    // evaluator dropping the disjunct.
                                    let _ = v.refresh_full(base);
                                }
                            }
                        }
                    }
                }
            }
            sub.refreshes += 1;
            report.refreshed.push(name.clone());
        }
        report
    }
}

impl Source for PdmsNetwork {
    /// Direct lookup of a qualified relation (no snapshotting): only valid
    /// for single-threaded use. Returns `None` for relations of unknown
    /// peers.
    fn relation(&self, _name: &str) -> Option<&Relation> {
        // SharedCatalog hands out guards, not references; the Source trait
        // cannot express that lifetime, so network-wide evaluation goes
        // through `snapshot_all` instead.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revere_storage::{RelSchema, Value};
    use revere_util::fault::FaultSpec;

    /// The Figure 2 network in miniature: three universities, chain
    /// mappings, course data everywhere.
    fn university_network() -> PdmsNetwork {
        let mut net = PdmsNetwork::new();
        for (peer, rel, rows) in [
            ("MIT", "subject", vec![("Databases", 120i64)]),
            ("Berkeley", "course", vec![("Ancient Greece", 40), ("Databases", 95)]),
            ("Tsinghua", "kecheng", vec![("Roman Law", 25)]),
        ] {
            let mut p = Peer::new(peer);
            let mut r = Relation::new(RelSchema::new(
                rel,
                vec![
                    revere_storage::Attribute::text("title"),
                    revere_storage::Attribute::int("enrollment"),
                ],
            ));
            for (t, e) in rows {
                r.insert(vec![Value::str(t), Value::Int(e)]);
            }
            p.add_relation(r);
            net.add_peer(p);
        }
        net.add_mapping(
            GlavMapping::parse(
                "m_bm",
                "Berkeley",
                "MIT",
                "m(T, E) :- Berkeley.course(T, E) ==> m(T, E) :- MIT.subject(T, E)",
            )
            .unwrap(),
        );
        net.add_mapping(
            GlavMapping::parse(
                "m_tb",
                "Tsinghua",
                "Berkeley",
                "m(T, E) :- Tsinghua.kecheng(T, E) ==> m(T, E) :- Berkeley.course(T, E)",
            )
            .unwrap(),
        );
        net
    }

    #[test]
    fn query_reaches_all_peers_transitively() {
        let net = university_network();
        let out = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        // All four (title, enrollment) pairs from all three peers.
        assert_eq!(out.answers.len(), 4, "{}", out.answers);
        assert_eq!(out.peers_contacted.len(), 3);
        assert!(out.messages >= 4); // two remote peers, ≥1 relation each
        assert!(out.tuples_shipped >= 3);
        // The perfect network leaves no gaps to report.
        assert!(out.completeness.is_complete(), "{:?}", out.completeness);
        assert_eq!(out.completeness.retries, 0);
        assert_eq!(out.completeness.latency_ticks, 0);
        assert!((out.completeness.coverage() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn query_in_any_peers_vocabulary() {
        let net = university_network();
        // Same information need, posed at Tsinghua in its own vocabulary.
        let out = net.query_str("Tsinghua", "q(T, E) :- Tsinghua.kecheng(T, E)").unwrap();
        assert_eq!(out.answers.len(), 4);
    }

    #[test]
    fn local_only_when_no_mappings() {
        let mut net = PdmsNetwork::new();
        let mut p = Peer::new("Lonely");
        let mut r = Relation::new(RelSchema::text("course", &["title"]));
        r.insert(vec![Value::str("Solipsism 101")]);
        p.add_relation(r);
        net.add_peer(p);
        let out = net.query_str("Lonely", "q(T) :- Lonely.course(T)").unwrap();
        assert_eq!(out.answers.len(), 1);
        assert_eq!(out.messages, 0);
        assert_eq!(out.tuples_shipped, 0);
        assert!(out.completeness.is_complete());
    }

    #[test]
    fn selections_are_pushed_through_mappings() {
        let net = university_network();
        let out = net
            .query_str("MIT", "q(T, E) :- MIT.subject(T, E), E > 50")
            .unwrap();
        // Databases@MIT (120) and Databases@Berkeley (95).
        assert_eq!(out.answers.len(), 2, "{}", out.answers);
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let net = university_network();
        assert!(net.query_str("Oxford", "q(T) :- Oxford.course(T)").is_err());
    }

    #[test]
    #[should_panic(expected = "unknown source peer")]
    fn mapping_to_unknown_peer_panics() {
        let mut net = PdmsNetwork::new();
        net.add_peer(Peer::new("A"));
        net.add_mapping(
            GlavMapping::parse("m", "Ghost", "A", "m(X) :- Ghost.r(X) ==> m(X) :- A.r(X)").unwrap(),
        );
    }

    #[test]
    fn try_add_mapping_rejects_bad_edges_gracefully() {
        let mut net = PdmsNetwork::new();
        net.add_peer(Peer::new("A"));
        net.add_peer(Peer::new("B"));
        let good = GlavMapping::parse("m", "A", "B", "m(X) :- A.r(X) ==> m(X) :- B.r(X)").unwrap();
        assert!(net.try_add_mapping(good).is_ok());
        let bad_src =
            GlavMapping::parse("m", "Ghost", "B", "m(X) :- Ghost.r(X) ==> m(X) :- B.r(X)").unwrap();
        let err = net.try_add_mapping(bad_src).unwrap_err();
        assert!(err.contains("unknown source peer Ghost"), "{err}");
        let bad_tgt =
            GlavMapping::parse("m", "A", "Ghost", "m(X) :- A.r(X) ==> m(X) :- Ghost.r(X)").unwrap();
        let err = net.try_add_mapping(bad_tgt).unwrap_err();
        assert!(err.contains("unknown target peer Ghost"), "{err}");
        // Rejected edges leave the graph untouched.
        assert_eq!(net.mapping_count(), 1);
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        // Both paths normalize through `distinct()`, so the comparison is
        // exact — same rows in the same order, no re-sorting needed.
        let net = university_network();
        let q = parse_query("q(T) :- MIT.subject(T, E)").unwrap();
        let seq = net.query("MIT", &q).unwrap();
        let par = net.query_parallel("MIT", &q).unwrap();
        assert_eq!(seq.answers.rows(), par.answers.rows());
    }

    #[test]
    fn sequential_and_parallel_stats_are_identical() {
        // The fetch phase is one shared routine: both paths must report
        // exactly the same accounting, not just the same rows.
        let net = university_network();
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        let seq = net.query("MIT", &q).unwrap();
        let par = net.query_parallel("MIT", &q).unwrap();
        assert_eq!(seq.messages, par.messages);
        assert_eq!(seq.tuples_shipped, par.tuples_shipped);
        assert_eq!(seq.peers_contacted, par.peers_contacted);
        assert_eq!(seq.completeness, par.completeness);
    }

    #[test]
    fn parallel_execution_is_deterministic_across_runs() {
        // The disjunct workers race, but the merged answer must not: row
        // order is normalized, so repeated runs are byte-identical.
        let net = university_network();
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        let first = net.query_parallel("MIT", &q).unwrap();
        for _ in 0..8 {
            let again = net.query_parallel("MIT", &q).unwrap();
            assert_eq!(first.answers.rows(), again.answers.rows());
        }
        // Sorted normalization: each row ≤ its successor.
        assert!(first.answers.rows().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn peer_departure_degrades_gracefully() {
        // "every member can join or leave at will": drop Berkeley's data;
        // MIT still gets its local answers plus whatever remains reachable
        // — and the gap is *reported*, not silently absorbed.
        let mut net = university_network();
        net.peer_mut("Berkeley").unwrap().storage =
            revere_storage::SharedCatalog::new(Catalog::new());
        let out = net.query_str("MIT", "q(T) :- MIT.subject(T, E)").unwrap();
        // MIT local (1) + Tsinghua via the two-hop translation (1).
        assert_eq!(out.answers.len(), 2, "{}", out.answers);
        assert!(!out.completeness.is_complete());
        assert!(out.completeness.relations_missing.contains("Berkeley.course"));
        assert!(out.completeness.disjuncts_dropped >= 1);
    }

    #[test]
    fn ghost_owner_is_a_reported_gap_not_a_silent_shrink() {
        // Regression for the silent-shrinkage bug: a relation whose owner
        // has left the network must surface in the completeness report.
        let mut net = university_network();
        let departed = net.remove_peer("Berkeley");
        assert!(departed.is_some());
        let out = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        // Smaller answer, as before ...
        assert_eq!(out.answers.len(), 2, "{}", out.answers);
        // ... but now the ghost is named instead of vanishing without trace.
        assert!(!out.completeness.is_complete());
        assert!(out.completeness.peers_unreachable.contains("Berkeley"));
        assert!(out.completeness.relations_missing.contains("Berkeley.course"));
        assert!(out.completeness.disjuncts_dropped >= 1);
        assert!(out.completeness.coverage() < 1.0);
    }

    #[test]
    fn downed_peer_yields_partial_answer_with_report() {
        let mut net = university_network();
        net.faults = FaultPlan::new(FaultSpec::default().with_down_peer("Berkeley"));
        let out = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        assert_eq!(out.answers.len(), 2, "{}", out.answers);
        assert!(out.completeness.peers_unreachable.contains("Berkeley"));
        assert!(out.completeness.relations_missing.contains("Berkeley.course"));
        // Every attempt was a request into the void.
        assert_eq!(out.completeness.retries as u32, net.retry.attempts() - 1);
        assert!(out.completeness.messages_dropped > 0);
        assert!(out.completeness.latency_ticks > 0, "backoff advances the clock");
    }

    #[test]
    fn message_budget_truncates_with_report() {
        let mut net = university_network();
        // Room for exactly one remote fetch (2 messages), not two.
        net.budget.max_messages = Some(2);
        let out = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        assert!(out.messages <= 2);
        assert!(out.completeness.budget_exhausted);
        assert!(!out.completeness.is_complete());
        assert_eq!(out.completeness.relations_missing.len(), 1);
        // Local data always survives a blown budget.
        assert!(out.answers.len() >= 1);
    }

    #[test]
    fn deadline_truncates_with_report() {
        let mut net = university_network();
        net.faults = FaultPlan::new(FaultSpec {
            latency_ticks: (3, 3),
            ..FaultSpec::default()
        });
        net.budget.deadline_ticks = Some(2);
        let out = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        // First remote fetch starts at tick 0 (< 2) and lands at tick 3;
        // the second is past the deadline before it starts.
        assert!(out.completeness.deadline_exceeded);
        assert_eq!(out.completeness.relations_missing.len(), 1);
        assert_eq!(out.completeness.latency_ticks, 3);
    }

    #[test]
    fn zero_fault_plan_is_byte_identical_to_default() {
        let plain = university_network();
        let mut chaos_off = university_network();
        chaos_off.faults = FaultPlan::new(FaultSpec::chaos(99, 0.0));
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        let a = plain.query("MIT", &q).unwrap();
        let b = chaos_off.query("MIT", &q).unwrap();
        assert_eq!(a.answers.rows(), b.answers.rows());
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.tuples_shipped, b.tuples_shipped);
        assert_eq!(a.peers_contacted, b.peers_contacted);
        assert_eq!(a.completeness, b.completeness);
    }

    #[test]
    fn warm_cache_answers_are_byte_identical_and_counted() {
        let net = university_network();
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        let cold = net.query("MIT", &q).unwrap();
        let stats = net.cache_stats();
        assert_eq!(stats.reformulation_hits, 0);
        assert_eq!(stats.reformulation_misses, 1);
        assert!(stats.plan_misses > 0);
        for _ in 0..3 {
            let warm = net.query("MIT", &q).unwrap();
            assert_eq!(cold.answers.rows(), warm.answers.rows());
            assert_eq!(cold.completeness, warm.completeness);
        }
        let stats = net.cache_stats();
        assert_eq!(stats.reformulation_hits, 3);
        assert_eq!(stats.reformulation_misses, 1);
        // Every disjunct of every warm query came from the plan cache.
        assert_eq!(stats.plan_hits, 3 * cold.reformulation.union.disjuncts.len());
    }

    #[test]
    fn caching_disabled_is_byte_identical() {
        let cached = university_network();
        let mut plain = university_network();
        plain.caching = false;
        let q = parse_query("q(T, E) :- MIT.subject(T, E), E > 30").unwrap();
        for _ in 0..2 {
            let a = cached.query("MIT", &q).unwrap();
            let b = plain.query("MIT", &q).unwrap();
            assert_eq!(a.answers.rows(), b.answers.rows());
            assert_eq!(a.completeness, b.completeness);
        }
        assert_eq!(plain.cache_stats(), CacheStats::default());
    }

    #[test]
    fn adding_a_mapping_invalidates_the_caches() {
        let mut net = university_network();
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        let before = net.query("MIT", &q).unwrap();
        assert_eq!(before.answers.len(), 4);
        // A new peer + mapping makes more data reachable; a stale cached
        // reformulation would keep answering without it.
        let mut p = Peer::new("Oxford");
        let mut r = Relation::new(RelSchema::new(
            "module",
            vec![
                revere_storage::Attribute::text("title"),
                revere_storage::Attribute::int("enrollment"),
            ],
        ));
        r.insert(vec![Value::str("Logic"), Value::Int(77)]);
        p.add_relation(r);
        net.add_peer(p);
        net.add_mapping(
            GlavMapping::parse(
                "m_om",
                "Oxford",
                "MIT",
                "m(T, E) :- Oxford.module(T, E) ==> m(T, E) :- MIT.subject(T, E)",
            )
            .unwrap(),
        );
        let after = net.query("MIT", &q).unwrap();
        assert_eq!(after.answers.len(), 5, "{}", after.answers);
        assert!(after.answers.iter().any(|r| r[0] == Value::str("Logic")));
    }

    #[test]
    fn removing_a_peer_invalidates_the_caches() {
        let mut net = university_network();
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        assert_eq!(net.query("MIT", &q).unwrap().answers.len(), 4);
        net.remove_peer("Tsinghua");
        let after = net.query("MIT", &q).unwrap();
        assert_eq!(after.answers.len(), 3, "{}", after.answers);
        assert!(!after.completeness.is_complete());
    }

    #[test]
    fn peer_data_changes_invalidate_via_the_stats_epoch() {
        let net = university_network();
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        assert_eq!(net.query("MIT", &q).unwrap().answers.len(), 4);
        // Write through the peer's own storage — no network-level mutator
        // involved, so only the catalog stats epoch can catch it.
        net.peer("Berkeley").unwrap().storage.write(|c| {
            c.insert("Berkeley.course", vec![Value::str("Rhetoric"), Value::Int(12)])
        });
        let after = net.query("MIT", &q).unwrap();
        assert_eq!(after.answers.len(), 5, "{}", after.answers);
    }

    #[test]
    fn incomplete_fetches_do_not_poison_the_plan_cache() {
        let mut net = university_network();
        net.faults = FaultPlan::new(FaultSpec::default().with_down_peer("Berkeley"));
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        let degraded = net.query("MIT", &q).unwrap();
        assert!(!degraded.completeness.is_complete());
        // Plans costed against the partial staging data were not cached.
        assert_eq!(net.cache_stats().plan_hits, 0);
        let again = net.query("MIT", &q).unwrap();
        assert_eq!(degraded.answers.rows(), again.answers.rows());
        // The reformulation *is* reused (it never depends on the data)...
        assert_eq!(net.cache_stats().reformulation_hits, 1);
        // ...but every disjunct replanned.
        assert_eq!(net.cache_stats().plan_hits, 0);
    }

    #[test]
    fn parallel_path_shares_the_caches() {
        let net = university_network();
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        let seq = net.query("MIT", &q).unwrap();
        let par = net.query_parallel("MIT", &q).unwrap();
        assert_eq!(seq.answers.rows(), par.answers.rows());
        let stats = net.cache_stats();
        assert_eq!(stats.reformulation_hits, 1);
        assert_eq!(stats.plan_hits, seq.reformulation.union.disjuncts.len());
    }

    #[test]
    fn clear_caches_resets_entries_and_counters() {
        let net = university_network();
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        net.query("MIT", &q).unwrap();
        net.query("MIT", &q).unwrap();
        assert!(net.cache_stats().reformulation_hits > 0);
        net.clear_caches();
        assert_eq!(net.cache_stats(), CacheStats::default());
        let out = net.query("MIT", &q).unwrap();
        assert_eq!(out.answers.len(), 4);
        assert_eq!(net.cache_stats().reformulation_misses, 1);
    }

    #[test]
    fn cache_stats_display_round_trips() {
        let stats = CacheStats {
            reformulation_hits: 3,
            reformulation_misses: 1,
            plan_hits: 12,
            plan_misses: 4,
            plan_evictions: 2,
        };
        let text = stats.to_string();
        assert_eq!(text.parse::<CacheStats>().unwrap(), stats);
        // The default round-trips too, and garbage is rejected.
        let d = CacheStats::default();
        assert_eq!(d.to_string().parse::<CacheStats>().unwrap(), d);
        assert!("plan_hits=x".parse::<CacheStats>().is_err());
        assert!("no_such_field=1".parse::<CacheStats>().is_err());
        assert!("not a field".parse::<CacheStats>().is_err());
    }

    /// One peer, one join: `course(title, dept) ⋈ dept(name, head)`.
    fn join_network() -> PdmsNetwork {
        let mut net = PdmsNetwork::new();
        let mut p = Peer::new("U");
        let mut course = Relation::new(RelSchema::text("course", &["title", "dept"]));
        for (t, d) in [("Databases", "cs"), ("Compilers", "cs"), ("Ethics", "phil")] {
            course.insert(vec![Value::str(t), Value::str(d)]);
        }
        let mut dept = Relation::new(RelSchema::text("dept", &["name", "head"]));
        for (n, h) in [("cs", "Stonebraker"), ("phil", "Kant")] {
            dept.insert(vec![Value::str(n), Value::str(h)]);
        }
        p.add_relation(course);
        p.add_relation(dept);
        net.add_peer(p);
        net
    }

    #[test]
    fn feedback_evicts_miscalibrated_plans_and_learns_overlap() {
        let mut net = join_network();
        // Hair-trigger threshold: every plan's max q-error is ≥ 1, so
        // every complete execution feeds back and evicts its own entry.
        net.replan_q_error = Some(0.5);
        let q = "q(T, H) :- U.course(T, D), U.dept(D, H)";
        let out = net.query_str("U", q).unwrap();
        assert_eq!(out.answers.len(), 3, "{}", out.answers);
        assert!(net.cache_stats().plan_evictions >= 1, "{}", net.cache_stats());
        // The observed selectivity landed in the owning peer's catalog...
        let learned = net.snapshot_all();
        assert!(!learned.join_stats().is_empty());
        let sel = learned
            .join_stats()
            .overlap("U.course", 1, "U.dept", 0)
            .expect("the join pair was observed");
        // 3 bindings out of 3 probes × 2 build rows.
        assert!((sel - 0.5).abs() < 1e-12, "sel {sel}");
        // ...and answers stay correct (and identical) on the re-planned path.
        let again = net.query_str("U", q).unwrap();
        assert_eq!(again.answers, out.answers);
    }

    #[test]
    fn feedback_disabled_leaves_the_estimator_alone() {
        let mut net = join_network();
        net.replan_q_error = None;
        let q = "q(T, H) :- U.course(T, D), U.dept(D, H)";
        net.query_str("U", q).unwrap();
        net.query_str("U", q).unwrap();
        let stats = net.cache_stats();
        assert_eq!(stats.plan_evictions, 0, "{stats}");
        assert!(stats.plan_hits >= 1, "{stats}");
        assert!(net.snapshot_all().join_stats().is_empty());
    }

    #[test]
    fn completeness_report_display_round_trips() {
        let mut report = CompletenessReport {
            disjuncts_total: 5,
            disjuncts_dropped: 2,
            peers_unreachable: ["Berkeley", "Tsinghua"].iter().map(|s| s.to_string()).collect(),
            relations_missing: ["Berkeley.course"].iter().map(|s| s.to_string()).collect(),
            retries: 7,
            messages_dropped: 3,
            latency_ticks: 42,
            budget_exhausted: true,
            deadline_exceeded: false,
        };
        let text = report.to_string();
        assert_eq!(text.parse::<CompletenessReport>().unwrap(), report);
        // Empty sets serialize as empty values and still round-trip.
        report.peers_unreachable.clear();
        report.relations_missing.clear();
        let text = report.to_string();
        assert_eq!(text.parse::<CompletenessReport>().unwrap(), report);
        let d = CompletenessReport::default();
        assert_eq!(d.to_string().parse::<CompletenessReport>().unwrap(), d);
        assert!("latency_ticks=abc".parse::<CompletenessReport>().is_err());
    }

    #[test]
    fn live_completeness_reports_round_trip() {
        // The serialization holds for reports the system actually
        // produces, not just hand-built ones.
        let mut net = university_network();
        net.faults = FaultPlan::new(FaultSpec::default().with_down_peer("Berkeley"));
        let out = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        let text = out.completeness.to_string();
        assert_eq!(text.parse::<CompletenessReport>().unwrap(), out.completeness);
    }

    #[test]
    fn explain_analyze_renders_per_disjunct_tables() {
        let net = university_network();
        let text = net.explain_analyze_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        assert!(text.contains("explain analyze at MIT"), "{text}");
        assert!(text.contains("disjunct 1:"), "{text}");
        assert!(text.contains("act bind"), "{text}");
        assert!(text.contains("q-err"), "{text}");
        assert!(text.contains("max q-error"), "{text}");
        assert!(net.explain_analyze_str("Oxford", "q(T) :- Oxford.c(T)").is_err());
    }

    #[test]
    fn enabling_obs_never_changes_answers() {
        let plain = university_network();
        let mut traced = university_network();
        traced.obs = Obs::enabled();
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        let a = plain.query("MIT", &q).unwrap();
        let b = traced.query("MIT", &q).unwrap();
        assert_eq!(a.answers.rows(), b.answers.rows());
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.completeness, b.completeness);
        // And the trace actually recorded the pipeline.
        let spans = traced.obs.tracer().unwrap().spans();
        assert!(spans.iter().any(|s| s.name == "pdms.query"));
        assert!(spans.iter().any(|s| s.name == "pdms.reformulate"));
        assert!(spans.iter().any(|s| s.name == "pdms.fetch"));
        assert!(spans.iter().any(|s| s.name == "pdms.eval.disjunct"));
        assert!(spans.iter().any(|s| s.name == "eval.step"));
        assert!(traced.obs.metrics().unwrap().counter(names::PDMS_FETCH_MESSAGES_SENT) > 0);
    }

    #[test]
    fn obs_trace_mirrors_simulated_latency() {
        let mut net = university_network();
        net.obs = Obs::enabled();
        net.faults = FaultPlan::new(FaultSpec::default().with_down_peer("Berkeley"));
        let out = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        assert!(out.completeness.latency_ticks > 0);
        // The tracer clock advanced by at least the simulated latency
        // (span starts/ends consume extra ticks on top).
        let now = net.obs.tracer().unwrap().now();
        assert!(now >= out.completeness.latency_ticks, "{now}");
        // The down peer's fetch span carries its fault annotations.
        let spans = net.obs.tracer().unwrap().spans();
        let fetch = spans
            .iter()
            .find(|s| s.name == "pdms.fetch" && s.arg("owner") == Some("Berkeley"))
            .expect("fetch span for Berkeley");
        assert_eq!(fetch.arg("outcome"), Some("unreachable"));
        assert!(fetch.arg("dropped").is_some());
        assert!(fetch.arg("latency_ticks").is_some());
    }

    #[test]
    fn new_peer_joining_is_one_mapping_away() {
        // Example 3.1's Trento: join by mapping to the most similar peer.
        let mut net = university_network();
        let mut trento = Peer::new("Trento");
        let mut r = Relation::new(RelSchema::new(
            "corso",
            vec![
                revere_storage::Attribute::text("titolo"),
                revere_storage::Attribute::int("iscritti"),
            ],
        ));
        r.insert(vec![Value::str("Etruscan Art"), Value::Int(15)]);
        trento.add_relation(r);
        net.add_peer(trento);
        net.add_mapping(
            GlavMapping::parse(
                "m_tt",
                "Trento",
                "Tsinghua",
                "m(T, E) :- Trento.corso(T, E) ==> m(T, E) :- Tsinghua.kecheng(T, E)",
            )
            .unwrap(),
        );
        let out = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        assert_eq!(out.answers.len(), 5);
        assert!(out
            .answers
            .iter()
            .any(|r| r[0] == Value::str("Etruscan Art")));
    }

    #[test]
    fn departed_peers_learned_stats_do_not_survive_removal() {
        // A peer that leaves takes its evidence with it: learned join
        // selectivities naming its relations are stale the moment it
        // departs (it may rejoin with different data under the same
        // names) and must not keep steering other peers' plans.
        let mut net = university_network();
        net.peer("MIT").unwrap().storage.write(|c| {
            c.note_join_overlap("MIT.subject", 0, "Berkeley.course", 0, 0.5);
            c.note_join_overlap("MIT.subject", 0, "Tsinghua.kecheng", 0, 0.25);
        });
        let mit = net.peer("MIT").unwrap();
        assert_eq!(mit.storage.read(|c| c.join_stats().len()), 2);
        let epoch_before = mit.storage.epoch();

        net.remove_peer("Berkeley").expect("Berkeley is a member");
        let mit = net.peer("MIT").unwrap();
        assert_eq!(
            mit.storage.read(|c| c.join_stats().overlap("MIT.subject", 0, "Berkeley.course", 0)),
            None,
            "stale evidence about the departed peer is gone"
        );
        assert_eq!(
            mit.storage.read(|c| c.join_stats().overlap("MIT.subject", 0, "Tsinghua.kecheng", 0)),
            Some(0.25),
            "evidence about live peers survives"
        );
        assert!(mit.storage.epoch() != epoch_before, "purge shifts the cache epoch");
    }

    #[test]
    fn durable_peer_restart_recovers_catalog_and_schema() {
        let mut net = university_network();
        net.enable_durability("Berkeley").expect("Berkeley is a member");
        // Post-checkpoint mutation: lands in the log, not the image.
        net.peer_mut("Berkeley").unwrap().insert(
            "course",
            vec![Value::str("Crash Recovery"), Value::Int(60)],
        );
        let before = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();

        let report = net.restart_peer("Berkeley").expect("durable peer restarts");
        assert!(report.image_used);
        assert_eq!(report.replayed, 1, "only the post-checkpoint insert replays");
        assert!(
            net.peer("Berkeley").unwrap().schema.relation("course").is_some(),
            "logical schema is configuration, not volatile state"
        );
        let after = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        assert_eq!(before.answers, after.answers, "answers identical across the restart");
    }

    #[test]
    fn non_durable_peer_cannot_restart() {
        let mut net = university_network();
        assert!(net.restart_peer("Berkeley").is_none(), "no disk, no recovery");
        assert!(net.peer("Berkeley").is_some(), "the live peer is untouched");
        assert!(net.restart_peer("Nowhere").is_none());
    }

    #[test]
    fn subscription_tracks_published_deltas_across_peers() {
        let mut net = university_network();
        let text = "q(T, E) :- MIT.subject(T, E)";
        net.subscribe("MIT", "cq", text, IvmStrategy::Dataflow).unwrap();
        // Initialization lands exactly on the one-shot answer.
        let oneshot = net.query_str("MIT", text).unwrap().answers;
        assert_eq!(net.subscription("cq").unwrap().answers().rows(), oneshot.rows());

        // A remote insert flows through the mapping-reformulated circuit.
        let gram = Updategram::inserts(
            "Berkeley.course",
            vec![vec![Value::str("Distributed Systems"), Value::Int(77)]],
        );
        let report = net.publish(&gram).unwrap();
        assert_eq!(report.refreshed, vec!["cq".to_string()]);
        assert!(report.output_changes >= 1);
        let oneshot = net.query_str("MIT", text).unwrap().answers;
        assert_eq!(net.subscription("cq").unwrap().answers().rows(), oneshot.rows());

        // A delete retracts; the maintained answer shrinks in lockstep.
        let gram = Updategram::deletes(
            "Berkeley.course",
            vec![vec![Value::str("Ancient Greece"), Value::Int(40)]],
        );
        net.publish(&gram).unwrap();
        let oneshot = net.query_str("MIT", text).unwrap().answers;
        assert_eq!(net.subscription("cq").unwrap().answers().rows(), oneshot.rows());
        assert_eq!(net.subscription("cq").unwrap().refreshes, 2);
    }

    #[test]
    fn counting_and_dataflow_subscriptions_agree() {
        let mut net = university_network();
        let text = "q(T, E) :- MIT.subject(T, E)";
        net.subscribe("MIT", "flow", text, IvmStrategy::Dataflow).unwrap();
        net.subscribe("MIT", "count", text, IvmStrategy::Counting).unwrap();
        let grams = vec![
            Updategram::inserts("MIT.subject", vec![vec![Value::str("Queues"), Value::Int(30)]]),
            Updategram::inserts(
                "Berkeley.course",
                vec![vec![Value::str("Queues"), Value::Int(30)]],
            ),
            Updategram::deletes("MIT.subject", vec![vec![Value::str("Queues"), Value::Int(30)]]),
        ];
        for gram in &grams {
            net.publish(gram).unwrap();
            let flow = net.subscription("flow").unwrap().answers();
            let count = net.subscription("count").unwrap().answers();
            assert_eq!(flow.rows(), count.rows(), "strategies diverged on {gram:?}");
        }
    }

    #[test]
    fn unaffected_subscription_is_a_counted_noop() {
        let mut net = PdmsNetwork::new();
        for name in ["A", "B"] {
            let mut p = Peer::new(name);
            let mut r = Relation::new(RelSchema::text("r", &["x"]));
            r.insert(vec![Value::str("seed")]);
            p.add_relation(r);
            net.add_peer(p);
        }
        net.subscribe("A", "only_a", "q(X) :- A.r(X)", IvmStrategy::Dataflow).unwrap();
        let work_before = net.subscription("only_a").unwrap().work();
        let report = net
            .publish(&Updategram::inserts("B.r", vec![vec![Value::str("noise")]]))
            .unwrap();
        assert!(report.refreshed.is_empty());
        assert_eq!(report.skipped, 1);
        let sub = net.subscription("only_a").unwrap();
        assert_eq!(sub.skipped, 1);
        assert_eq!(sub.work(), work_before, "no join work for an unaffected delta");
    }

    #[test]
    fn durable_peer_direct_mutations_sync_through_the_wal() {
        let mut net = university_network();
        net.enable_durability("Berkeley").expect("Berkeley is a member");
        let text = "q(T, E) :- MIT.subject(T, E)";
        net.subscribe("MIT", "cq", text, IvmStrategy::Dataflow).unwrap();
        // Mutate the durable peer directly — no publish, no gram.
        net.peer("Berkeley").unwrap().storage.write(|c| {
            c.insert("Berkeley.course", vec![Value::str("WAL Mining"), Value::Int(12)]);
            c.delete("Berkeley.course", &[Value::str("Ancient Greece"), Value::Int(40)]);
        });
        let absorbed = net.sync_durable_subscriptions();
        assert!(absorbed >= 2, "both the insert and the delete are captured");
        let oneshot = net.query_str("MIT", text).unwrap().answers;
        assert_eq!(net.subscription("cq").unwrap().answers().rows(), oneshot.rows());
        // Cursors advanced: a second sync has nothing left to absorb.
        assert_eq!(net.sync_durable_subscriptions(), 0);
    }

    #[test]
    fn publish_rejects_bad_targets() {
        let mut net = university_network();
        let unqualified = Updategram::inserts("course", vec![vec![Value::str("x"), Value::Int(1)]]);
        assert!(net.publish(&unqualified).unwrap_err().contains("not peer-qualified"));
        let ghost =
            Updategram::inserts("Oxford.course", vec![vec![Value::str("x"), Value::Int(1)]]);
        assert!(net.publish(&ghost).unwrap_err().contains("unknown peer"));
        let unstored =
            Updategram::inserts("MIT.course", vec![vec![Value::str("x"), Value::Int(1)]]);
        assert!(net.publish(&unstored).unwrap_err().contains("does not store"));
    }
}
