//! The Figure 4 XML mapping-template language.
//!
//! §3.1.1: "Our mapping language begins with a 'template' defined from a
//! peer's schema; the peer's database administrator will annotate portions
//! of this template with query information defining how to extract the
//! required data from source relations or other peer schemas ... we
//! actually use a subset of XQuery to define the mappings from XML data to
//! an XML schema ... supports hierarchical XML construction and limited
//! path expressions, but avoids most of the complex ... features of
//! XQuery."
//!
//! A template is an XML document shaped like the *target* schema. Two
//! annotation forms appear as text content, exactly as in Figure 4:
//!
//! * **binding** — `{$c = document("Berkeley.xml")/schedule/college/dept}`
//!   as the first text of an element: the element is instantiated once per
//!   node the expression matches; `$c` is bound in its subtree. The
//!   expression may also be rooted at an outer variable: `{$s = $c/course}`.
//! * **value** — `$c/name/text()`: replaced by the text of the first node
//!   the path matches under the binding of `$c` (or `$c/text()` for the
//!   bound node's own text).

use revere_xml::{parse, Document, NodeId, NodeKind, Path, XmlError};
use std::collections::HashMap;

/// A parsed mapping template.
#[derive(Debug, Clone)]
pub struct XmlMapping {
    template: Document,
}

/// Errors applying a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlMapError {
    /// The template itself is not well-formed XML.
    BadTemplate(XmlError),
    /// A binding/value annotation could not be parsed.
    BadAnnotation {
        /// The offending annotation text.
        text: String,
        /// Why it is bad.
        reason: String,
    },
    /// A value expression refers to a variable with no enclosing binding.
    UnboundVariable {
        /// The variable name (without `$`).
        var: String,
    },
    /// A binding references a source document not supplied to `apply`.
    UnknownDocument {
        /// The document name as written in the template.
        name: String,
    },
}

impl std::fmt::Display for XmlMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlMapError::BadTemplate(e) => write!(f, "bad template: {e}"),
            XmlMapError::BadAnnotation { text, reason } => {
                write!(f, "bad annotation {text:?}: {reason}")
            }
            XmlMapError::UnboundVariable { var } => write!(f, "unbound variable ${var}"),
            XmlMapError::UnknownDocument { name } => {
                write!(f, "mapping references unknown document {name:?}")
            }
        }
    }
}

impl std::error::Error for XmlMapError {}

/// A binding annotation `$var = <root>/<path>`.
#[derive(Debug, Clone)]
struct Binding {
    var: String,
    root: BindingRoot,
    path: Option<Path>,
}

#[derive(Debug, Clone)]
enum BindingRoot {
    /// `document("name")`
    Doc(String),
    /// `$outer`
    Var(String),
}

impl XmlMapping {
    /// Parse a template.
    pub fn parse(template: &str) -> Result<XmlMapping, XmlMapError> {
        let template = parse(template).map_err(XmlMapError::BadTemplate)?;
        Ok(XmlMapping { template })
    }

    /// Apply the mapping to the given source documents (name → document,
    /// where names match the template's `document("...")` references).
    pub fn apply(&self, docs: &HashMap<String, Document>) -> Result<Document, XmlMapError> {
        let troot = self.template.root();
        let root_name = self.template.name(troot).unwrap_or("result").to_string();
        let mut out = Document::new(root_name);
        let out_root = out.root();
        // Copy root attributes.
        if let NodeKind::Element { attrs, .. } = &self.template.node(troot).kind {
            for (k, v) in attrs {
                out.set_attr(out_root, k.clone(), v.clone());
            }
        }
        let env: HashMap<String, (String, NodeId)> = HashMap::new();
        self.instantiate_children(troot, &mut out, out_root, docs, &env)?;
        Ok(out)
    }

    /// Instantiate the template children of `tnode` under `onode`.
    fn instantiate_children(
        &self,
        tnode: NodeId,
        out: &mut Document,
        onode: NodeId,
        docs: &HashMap<String, Document>,
        env: &HashMap<String, (String, NodeId)>,
    ) -> Result<(), XmlMapError> {
        for &child in self.template.children(tnode) {
            match &self.template.node(child).kind {
                NodeKind::Text(t) => {
                    let mut text = t.trim();
                    if text.starts_with('{') {
                        // The binding part was consumed by the parent pass;
                        // anything after the closing brace is real content.
                        match text.find('}') {
                            Some(close) => text = text[close + 1..].trim(),
                            None => continue,
                        }
                    }
                    if text.is_empty() {
                        continue;
                    }
                    if let Some(expr) = parse_value_expr(text) {
                        let (var, path) = expr?;
                        let Some((doc_name, node)) = env.get(&var) else {
                            return Err(XmlMapError::UnboundVariable { var });
                        };
                        let doc = &docs[doc_name];
                        let value = match path {
                            None => doc.text_content(*node),
                            Some(p) => p
                                .eval(doc, *node)
                                .first()
                                .map(|&n| doc.text_content(n))
                                .unwrap_or_default(),
                        };
                        out.add_text(onode, value);
                    } else {
                        out.add_text(onode, text.to_string());
                    }
                }
                NodeKind::Element { name, attrs } => {
                    // A leading `{...}` text child is this element's binding.
                    let binding = self.leading_binding(child)?;
                    match binding {
                        None => {
                            let el = out.add_element(onode, name.clone());
                            for (k, v) in attrs {
                                out.set_attr(el, k.clone(), v.clone());
                            }
                            self.instantiate_children(child, out, el, docs, env)?;
                        }
                        Some(b) => {
                            // Resolve the node sequence the binding ranges over.
                            let (doc_name, ctx): (String, NodeId) = match &b.root {
                                BindingRoot::Doc(d) => {
                                    let doc = docs.get(d).ok_or_else(|| {
                                        XmlMapError::UnknownDocument { name: d.clone() }
                                    })?;
                                    (d.clone(), doc.root())
                                }
                                BindingRoot::Var(v) => env
                                    .get(v)
                                    .cloned()
                                    .ok_or(XmlMapError::UnboundVariable { var: v.clone() })?,
                            };
                            let doc = &docs[&doc_name];
                            let nodes: Vec<NodeId> = match &b.path {
                                Some(p) => p.eval(doc, ctx),
                                None => vec![ctx],
                            };
                            for n in nodes {
                                let el = out.add_element(onode, name.clone());
                                for (k, v) in attrs {
                                    out.set_attr(el, k.clone(), v.clone());
                                }
                                let mut inner = env.clone();
                                inner.insert(b.var.clone(), (doc_name.clone(), n));
                                self.instantiate_children(child, out, el, docs, &inner)?;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The `{...}` binding written as the first text child of an element.
    fn leading_binding(&self, el: NodeId) -> Result<Option<Binding>, XmlMapError> {
        for &c in self.template.children(el) {
            match &self.template.node(c).kind {
                NodeKind::Text(t) => {
                    let t = t.trim();
                    if t.is_empty() {
                        continue;
                    }
                    if let Some(body) = t.strip_prefix('{') {
                        // The annotation ends at the first '}'; trailing
                        // content (e.g. a value expression) is handled by
                        // the instantiation pass.
                        let close = body.find('}').ok_or_else(|| XmlMapError::BadAnnotation {
                            text: t.to_string(),
                            reason: "missing closing '}'".into(),
                        })?;
                        return parse_binding(body[..close].trim()).map(Some);
                    }
                    return Ok(None);
                }
                NodeKind::Element { .. } => return Ok(None),
            }
        }
        Ok(None)
    }
}

/// Parse `$var = document("name")/path` or `$var = $outer/path`.
fn parse_binding(src: &str) -> Result<Binding, XmlMapError> {
    let bad = |reason: &str| XmlMapError::BadAnnotation {
        text: src.to_string(),
        reason: reason.to_string(),
    };
    let (lhs, rhs) = src.split_once('=').ok_or_else(|| bad("missing '='"))?;
    let var = lhs
        .trim()
        .strip_prefix('$')
        .ok_or_else(|| bad("binding variable must start with '$'"))?
        .to_string();
    let rhs = rhs.trim();
    if let Some(rest) = rhs.strip_prefix("document(") {
        let close = rest.find(')').ok_or_else(|| bad("unclosed document("))?;
        let name = rest[..close].trim().trim_matches('"').trim_matches('\'').to_string();
        let path_src = rest[close + 1..].trim();
        let path = if path_src.is_empty() {
            None
        } else {
            Some(
                Path::parse(path_src)
                    .map_err(|e| bad(&format!("bad path {path_src:?}: {e}")))?,
            )
        };
        Ok(Binding { var, root: BindingRoot::Doc(name), path })
    } else if let Some(rest) = rhs.strip_prefix('$') {
        let (outer, path_src) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => (rest, ""),
        };
        let path = if path_src.is_empty() {
            None
        } else {
            Some(
                Path::parse(path_src)
                    .map_err(|e| bad(&format!("bad path {path_src:?}: {e}")))?,
            )
        };
        Ok(Binding { var, root: BindingRoot::Var(outer.trim().to_string()), path })
    } else {
        Err(bad("expected document(...) or $variable on the right-hand side"))
    }
}

/// Parse a value expression `$var/path/text()` (or `$var/text()`).
/// Returns `None` if the text is not a value expression at all.
#[allow(clippy::type_complexity)]
fn parse_value_expr(src: &str) -> Option<Result<(String, Option<Path>), XmlMapError>> {
    let rest = src.strip_prefix('$')?;
    let (var, path_src) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i + 1..]),
        None => (rest, ""),
    };
    if !var.chars().all(|c| c.is_alphanumeric() || c == '_') || var.is_empty() {
        return None;
    }
    if path_src.is_empty() || path_src == "text()" {
        return Some(Ok((var.to_string(), None)));
    }
    match Path::parse(path_src) {
        Ok(p) => Some(Ok((var.to_string(), Some(p)))),
        Err(e) => Some(Err(XmlMapError::BadAnnotation {
            text: src.to_string(),
            reason: e.to_string(),
        })),
    }
}

/// The Berkeley→MIT mapping of Figure 4, verbatim modulo whitespace.
pub fn figure4_mapping() -> XmlMapping {
    XmlMapping::parse(
        r#"<catalog>
  <course> {$c = document("Berkeley.xml")/schedule/college/dept}
    <name> $c/name/text() </name>
    <subject> {$s = $c/course}
      <title> $s/title/text() </title>
      <enrollment> $s/size/text() </enrollment>
    </subject>
  </course>
</catalog>"#,
    )
    .expect("the paper's own mapping parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn berkeley_doc() -> Document {
        parse(
            "<schedule><college><name>Berkeley</name>\
               <dept><name>History</name>\
                 <course><title>Ancient Greece</title><size>40</size></course>\
                 <course><title>Rome</title><size>25</size></course>\
               </dept>\
               <dept><name>CS</name>\
                 <course><title>Databases</title><size>120</size></course>\
               </dept>\
             </college></schedule>",
        )
        .unwrap()
    }

    fn docs() -> HashMap<String, Document> {
        HashMap::from([("Berkeley.xml".to_string(), berkeley_doc())])
    }

    #[test]
    fn figure4_reproduces_mit_catalog() {
        let mapping = figure4_mapping();
        let out = mapping.apply(&docs()).unwrap();
        // Root is MIT's catalog.
        assert_eq!(out.name(out.root()), Some("catalog"));
        // One <course> per Berkeley dept.
        let courses = Path::parse("/catalog/course").unwrap().eval(&out, out.root());
        assert_eq!(courses.len(), 2);
        // Dept names became course names.
        let names = Path::parse("/catalog/course/name").unwrap().eval_text(&out, out.root());
        assert_eq!(names, vec!["History", "CS"]);
        // Berkeley courses became subjects with title + enrollment.
        let titles =
            Path::parse("/catalog/course/subject/title").unwrap().eval_text(&out, out.root());
        assert_eq!(titles, vec!["Ancient Greece", "Rome", "Databases"]);
        let enrollments = Path::parse("/catalog/course/subject/enrollment")
            .unwrap()
            .eval_text(&out, out.root());
        assert_eq!(enrollments, vec!["40", "25", "120"]);
        // The result validates against MIT's Figure 3 schema.
        revere_xml::dtd::mit_schema().validate(&out).unwrap();
    }

    #[test]
    fn empty_source_yields_empty_catalog() {
        let mapping = figure4_mapping();
        let empty = parse("<schedule/>").unwrap();
        let out = mapping
            .apply(&HashMap::from([("Berkeley.xml".to_string(), empty)]))
            .unwrap();
        assert!(Path::parse("//course").unwrap().eval(&out, out.root()).is_empty());
    }

    #[test]
    fn missing_document_is_an_error() {
        let mapping = figure4_mapping();
        let err = mapping.apply(&HashMap::new()).unwrap_err();
        assert!(matches!(err, XmlMapError::UnknownDocument { .. }));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let m = XmlMapping::parse("<out><v> $nope/x/text() </v></out>").unwrap();
        let err = m.apply(&docs()).unwrap_err();
        assert!(matches!(err, XmlMapError::UnboundVariable { .. }));
    }

    #[test]
    fn bad_annotation_reported() {
        let m = XmlMapping::parse(r#"<out><a> {no dollar = here} </a></out>"#).unwrap();
        assert!(matches!(
            m.apply(&docs()).unwrap_err(),
            XmlMapError::BadAnnotation { .. }
        ));
    }

    #[test]
    fn literal_text_passes_through() {
        let m = XmlMapping::parse("<out><label>static text</label></out>").unwrap();
        let out = m.apply(&HashMap::new()).unwrap();
        let label = Path::parse("/out/label").unwrap().eval(&out, out.root());
        assert_eq!(out.text_content(label[0]), "static text");
    }

    #[test]
    fn attributes_copied_to_output() {
        let m = XmlMapping::parse(r#"<out version="1"><item kind="x">hi</item></out>"#).unwrap();
        let out = m.apply(&HashMap::new()).unwrap();
        assert_eq!(out.attr(out.root(), "version"), Some("1"));
        let item = Path::parse("/out/item").unwrap().eval(&out, out.root());
        assert_eq!(out.attr(item[0], "kind"), Some("x"));
    }

    #[test]
    fn variable_without_path_takes_node_text() {
        let m = XmlMapping::parse(
            r#"<names><n> {$x = document("d")/schedule/college/name} $x/text() </n></names>"#,
        )
        .unwrap();
        let out = m
            .apply(&HashMap::from([("d".to_string(), berkeley_doc())]))
            .unwrap();
        let n = Path::parse("/names/n").unwrap().eval(&out, out.root());
        assert_eq!(out.text_content(n[0]).trim(), "Berkeley");
    }

    #[test]
    fn descendant_paths_in_bindings() {
        let m = XmlMapping::parse(
            r#"<all><t> {$c = document("d")//course} $c/title/text() </t></all>"#,
        )
        .unwrap();
        let out = m
            .apply(&HashMap::from([("d".to_string(), berkeley_doc())]))
            .unwrap();
        let ts = Path::parse("/all/t").unwrap().eval(&out, out.root());
        assert_eq!(ts.len(), 3);
    }
}
