//! Updategrams and incremental view maintenance.
//!
//! §3.1.2: "Piazza treats updates as first-class citizens, as any other
//! data source, in the form of 'updategrams' \[36\]. Updategrams on base
//! data can be combined to create updategrams for views. When a view is
//! recomputed on a Piazza node, the query optimizer decides which
//! updategrams to use in a cost-based fashion."
//!
//! An [`Updategram`] is a signed delta on one base relation. [`maintain`]
//! applies a batch of updategrams to a catalog and brings a
//! [`MaterializedView`] up to date, choosing **incrementally** (delta
//! rules + counting) or by **full recomputation** with a simple cost model
//! — exactly the decision the paper assigns to the optimizer. Experiment
//! E8 validates the crossover.
//!
//! The delta rules use the standard progressive decomposition: process the
//! view's atoms left to right; the contribution of atom *i*'s delta is the
//! body evaluated with atoms `< i` in their *new* state, atom *i* replaced
//! by the delta, and atoms `> i` in their *old* state. We apply each
//! relation's delta to the catalog right after its contribution is
//! computed, so "new prefix / old suffix" falls out of evaluation order and
//! only self-joined changed relations need an old-state snapshot.

use crate::views::MaterializedView;
use revere_query::dataflow::DeltaBatch;
use revere_query::eval::{eval_cq_bag, EvalError, Source};
use revere_storage::{Catalog, Relation, Tuple};
use std::collections::HashMap;

/// A signed delta on one base relation.
#[derive(Debug, Clone, Default)]
pub struct Updategram {
    /// The (qualified) base relation name.
    pub relation: String,
    /// Tuples to insert.
    pub insert: Vec<Tuple>,
    /// Tuples to delete (every occurrence is removed).
    pub delete: Vec<Tuple>,
}

impl Updategram {
    /// An insert-only updategram.
    pub fn inserts(relation: impl Into<String>, rows: Vec<Tuple>) -> Self {
        Updategram { relation: relation.into(), insert: rows, delete: Vec::new() }
    }

    /// A delete-only updategram.
    pub fn deletes(relation: impl Into<String>, rows: Vec<Tuple>) -> Self {
        Updategram { relation: relation.into(), insert: Vec::new(), delete: rows }
    }

    /// Total changed tuples.
    pub fn size(&self) -> usize {
        self.insert.len() + self.delete.len()
    }

    /// True when the gram changes nothing. Sealing an empty gram is
    /// legal but wasteful — senders skip them to keep the change log
    /// (and the wire) free of no-op frames.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }

    /// Stamp this gram with a delivery id, making it a unit of
    /// at-least-once propagation (see [`crate::propagation`]).
    pub fn sequenced(self, id: u64) -> SequencedGram {
        SequencedGram { id, gram: self }
    }
}

/// An updategram stamped with a link-unique delivery id. Duplicated
/// deliveries of the same id are deduplicated at the receiver (idempotent
/// apply), which is what makes at-least-once shipping safe.
#[derive(Debug, Clone)]
pub struct SequencedGram {
    /// Delivery id, unique per propagation link.
    pub id: u64,
    /// The payload.
    pub gram: Updategram,
}

/// How the optimizer decided to bring the view up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceChoice {
    /// Delta rules + counting.
    Incremental,
    /// Invalidate and recompute.
    Recompute,
}

/// Outcome of one maintenance round.
#[derive(Debug, Clone)]
pub struct MaintenanceReport {
    /// The path taken.
    pub choice: MaintenanceChoice,
    /// Estimated incremental cost (tuples touched).
    pub est_incremental: usize,
    /// Estimated recompute cost (tuples touched).
    pub est_recompute: usize,
    /// Derivation rows produced by delta evaluation (0 for recompute).
    pub delta_derivations: usize,
}

/// Cost model: both paths approximated by tuples read.
///
/// * Incremental: for each changed atom occurrence, the delta joins with
///   the rest of the body — approximated by `|Δ| × (body_len − 1)` index
///   probes plus the delta itself, per occurrence of the changed relation.
/// * Recompute: reads every base relation in the body once.
fn estimate(
    view: &MaterializedView,
    catalog: &Catalog,
    grams: &[Updategram],
) -> (usize, usize) {
    let body = &view.definition.body;
    let recompute: usize = body
        .iter()
        .map(|a| catalog.get(&a.relation).map(Relation::len).unwrap_or(0))
        .sum();
    let mut incremental = 0usize;
    for g in grams {
        let occurrences = body.iter().filter(|a| a.relation == g.relation).count();
        incremental += g.size() * body.len().max(1) * occurrences.max(1);
    }
    (incremental, recompute)
}

/// Apply `grams` to `catalog` and bring `view` up to date.
///
/// `force` overrides the cost-based choice (used by the E8 ablation).
pub fn maintain(
    catalog: &mut Catalog,
    view: &mut MaterializedView,
    grams: &[Updategram],
    force: Option<MaintenanceChoice>,
) -> Result<MaintenanceReport, EvalError> {
    let (est_incremental, est_recompute) = estimate(view, catalog, grams);
    let choice = force.unwrap_or(if est_incremental < est_recompute {
        MaintenanceChoice::Incremental
    } else {
        MaintenanceChoice::Recompute
    });
    match choice {
        MaintenanceChoice::Recompute => {
            apply_updategrams(catalog, grams);
            view.refresh_full(catalog)?;
            Ok(MaintenanceReport { choice, est_incremental, est_recompute, delta_derivations: 0 })
        }
        MaintenanceChoice::Incremental => {
            let derivations = incremental_maintain(catalog, view, grams)?;
            Ok(MaintenanceReport {
                choice,
                est_incremental,
                est_recompute,
                delta_derivations: derivations,
            })
        }
    }
}

/// Apply updategrams through the catalog's insert/delete paths (not
/// `get_mut`), so statistics stay incrementally maintained and deletes
/// note only the rows actually removed — an updategram deleting a row the
/// relation never held must not desync the stats (`RelStats::note_delete`
/// used to be called unconditionally here). Public so tests and the
/// dataflow path apply grams with *exactly* the semantics the maintenance
/// deltas assume (deletes first, every occurrence removed).
pub fn apply_updategrams(catalog: &mut Catalog, grams: &[Updategram]) {
    for g in grams {
        for row in &g.delete {
            catalog.delete(&g.relation, row);
        }
        for row in &g.insert {
            catalog.insert(&g.relation, row.clone());
        }
    }
}

/// A catalog with a few extra named relations layered on top.
struct Overlay<'a> {
    base: &'a Catalog,
    extra: HashMap<&'a str, &'a Relation>,
}

impl Source for Overlay<'_> {
    fn relation(&self, name: &str) -> Option<&Relation> {
        self.extra.get(name).copied().or_else(|| self.base.get(name))
    }

    fn batch(&self, name: &str) -> Option<std::sync::Arc<revere_storage::ColumnarBatch>> {
        // Delta relations pivot afresh (they are small and short-lived);
        // base relations share the catalog's epoch-keyed image.
        match self.extra.get(name) {
            Some(r) => Some(std::sync::Arc::new(revere_storage::ColumnarBatch::from_relation(r))),
            None => self.base.batch(name),
        }
    }
}

/// The delta-rule pass. Returns the number of derivation rows produced.
///
/// Grams are processed in order; each gram is applied to the catalog right
/// after its contributions are computed, so atoms over relations with
/// earlier grams naturally read the new state and atoms over relations
/// with later grams the old state. Within one gram, occurrence `i` of the
/// changed relation reads the signed delta, occurrences `< i` read the
/// relation's *new* state and occurrences `> i` its old state — the exact
/// decomposition `ΔQ = Σᵢ new₁..newᵢ₋₁ · Δᵢ · oldᵢ₊₁..oldₙ`, which is what
/// makes Δ⋈Δ derivations (self-joins) come out right.
fn incremental_maintain(
    catalog: &mut Catalog,
    view: &mut MaterializedView,
    grams: &[Updategram],
) -> Result<usize, EvalError> {
    let deltas = derivation_deltas(catalog, &view.definition.clone(), grams)?;
    let total = deltas.len();
    view.apply_derivation_delta(deltas);
    Ok(total)
}

/// Compute the signed derivation deltas of `definition` under `grams`,
/// applying the grams to `catalog` in the process. This is the shared core
/// of incremental maintenance and of updategram *propagation* ("updategrams
/// on base data can be combined to create updategrams for views").
pub fn derivation_deltas(
    catalog: &mut Catalog,
    definition: &revere_query::ConjunctiveQuery,
    grams: &[Updategram],
) -> Result<Vec<(Tuple, i64)>, EvalError> {
    let mut deltas: Vec<(Tuple, i64)> = Vec::new();
    for g in grams {
        deltas.extend(derivation_deltas_readonly(catalog, definition, g)?);
        if catalog.get(&g.relation).is_some() {
            apply_updategrams(catalog, std::slice::from_ref(g));
        }
    }
    Ok(deltas)
}

/// Effective delete rows of one gram against the relation's current
/// contents: `Catalog::delete` removes *every* occurrence of a row, so a
/// row stored at multiplicity `m` contributes `m` retractions (not one —
/// the duplicate-tuple undercount the differential oracle arbitrates), and
/// a repeated row within one gram's delete list contributes only once
/// (the second physical delete removes nothing).
fn effective_deletes(base_rel: &Relation, deletes: &[Tuple]) -> Vec<Tuple> {
    let mut seen: Vec<&Tuple> = Vec::new();
    let mut rows = Vec::new();
    for row in deletes {
        if seen.contains(&row) {
            continue;
        }
        seen.push(row);
        let mult = base_rel.iter().filter(|r| *r == row).count();
        for _ in 0..mult {
            rows.push(row.clone());
        }
    }
    rows
}

/// The per-gram delta-rule core, **without** applying the gram: the signed
/// derivation deltas of `definition` under `g`, computed against the
/// catalog's current (pre-gram) state. The subscription layer uses this to
/// fan one published gram out to many continuous queries before applying
/// it once.
pub fn derivation_deltas_readonly(
    catalog: &Catalog,
    definition: &revere_query::ConjunctiveQuery,
    g: &Updategram,
) -> Result<Vec<(Tuple, i64)>, EvalError> {
    let mut deltas: Vec<(Tuple, i64)> = Vec::new();
    let Some(base_rel) = catalog.get(&g.relation) else {
        return Ok(deltas);
    };
    let schema = base_rel.schema.clone();
    let ins = Relation::with_rows(schema.clone(), g.insert.clone());
    let del = Relation::with_rows(schema.clone(), effective_deletes(base_rel, &g.delete));

    let body = definition.body.clone();
    let occurrences: Vec<usize> = body
        .iter()
        .enumerate()
        .filter(|(_, a)| a.relation == g.relation)
        .map(|(i, _)| i)
        .collect();
    if occurrences.is_empty() {
        return Ok(deltas);
    }
    // The relation's new state, needed only when it occurs more than
    // once in the body (self-join).
    let new_rel = if occurrences.len() > 1 {
        let mut nr = base_rel.clone();
        for row in &g.delete {
            nr.delete(row);
        }
        for row in &g.insert {
            nr.insert(row.clone());
        }
        Some(nr)
    } else {
        None
    };

    for (k, &i) in occurrences.iter().enumerate() {
        let mut q = definition.clone();
        q.body[i].relation = "__delta__".to_string();
        // Earlier occurrences of the same relation read the new state.
        for &j in &occurrences[..k] {
            q.body[j].relation = "__new__".to_string();
        }
        for (rel, sign) in [(&ins, 1i64), (&del, -1i64)] {
            if rel.is_empty() {
                continue;
            }
            let mut extra: HashMap<&str, &Relation> = HashMap::new();
            extra.insert("__delta__", rel);
            if let Some(nr) = &new_rel {
                extra.insert("__new__", nr);
            }
            let overlay = Overlay { base: catalog, extra };
            let bag = eval_cq_bag(&q, &overlay)?;
            for row in bag.into_rows() {
                deltas.push((row, sign));
            }
        }
    }
    Ok(deltas)
}

/// Convert one updategram into a [`DeltaBatch`] for the dataflow path,
/// signed against the catalog's current (pre-gram) state: each insert list
/// occurrence is `+1`; each *unique* delete row is `-m` where `m` is its
/// current multiplicity (matching [`apply_updategrams`], whose physical
/// delete removes every copy). Grams on unknown relations yield an empty
/// batch, mirroring [`derivation_deltas`].
pub fn gram_to_batch(catalog: &Catalog, gram: &Updategram) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    let Some(rel) = catalog.get(&gram.relation) else {
        return batch;
    };
    let mut seen: Vec<&Tuple> = Vec::new();
    for row in &gram.delete {
        if seen.contains(&row) {
            continue;
        }
        seen.push(row);
        let mult = rel.iter().filter(|r| *r == row).count() as i64;
        batch.add(&gram.relation, row.clone(), -mult);
    }
    for row in &gram.insert {
        batch.add(&gram.relation, row.clone(), 1);
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use revere_query::parse_query;
    use revere_storage::{RelSchema, Value};

    fn base() -> Catalog {
        let mut c = Catalog::new();
        let mut r = Relation::new(RelSchema::text("r", &["a", "b"]));
        let mut s = Relation::new(RelSchema::text("s", &["b", "c"]));
        for (a, b) in [("1", "x"), ("2", "x"), ("3", "y")] {
            r.insert(vec![a.into(), b.into()]);
        }
        for (b, c) in [("x", "p"), ("y", "q"), ("z", "r")] {
            s.insert(vec![b.into(), c.into()]);
        }
        c.register(r);
        c.register(s);
        c
    }

    fn view() -> MaterializedView {
        MaterializedView::new("v", parse_query("v(A, C) :- r(A, B), s(B, C)").unwrap())
    }

    /// Invariant: after maintenance the view equals a fresh recompute.
    fn assert_consistent(catalog: &Catalog, view: &MaterializedView) {
        let mut fresh = MaterializedView::new("chk", view.definition.clone());
        fresh.refresh_full(catalog).unwrap();
        assert_eq!(
            view.as_relation().rows(),
            fresh.as_relation().rows(),
            "view diverged from recompute"
        );
        // Derivation counts must match too.
        for row in fresh.as_relation().rows() {
            assert_eq!(view.derivations(row), fresh.derivations(row), "counts for {row:?}");
        }
    }

    #[test]
    fn insert_maintenance() {
        let mut c = base();
        let mut v = view();
        v.refresh_full(&c).unwrap();
        let g = Updategram::inserts("r", vec![vec!["4".into(), "y".into()]]);
        let rep = maintain(&mut c, &mut v, &[g], Some(MaintenanceChoice::Incremental)).unwrap();
        assert_eq!(rep.choice, MaintenanceChoice::Incremental);
        assert!(v.as_relation().contains(&vec![Value::str("4"), Value::str("q")]));
        assert_consistent(&c, &v);
    }

    #[test]
    fn delete_maintenance() {
        let mut c = base();
        let mut v = view();
        v.refresh_full(&c).unwrap();
        let g = Updategram::deletes("r", vec![vec!["1".into(), "x".into()]]);
        maintain(&mut c, &mut v, &[g], Some(MaintenanceChoice::Incremental)).unwrap();
        assert!(!v.as_relation().contains(&vec![Value::str("1"), Value::str("p")]));
        assert_consistent(&c, &v);
    }

    #[test]
    fn mixed_batch_over_both_relations() {
        let mut c = base();
        let mut v = view();
        v.refresh_full(&c).unwrap();
        let grams = vec![
            Updategram {
                relation: "r".into(),
                insert: vec![vec!["5".into(), "z".into()]],
                delete: vec![vec!["2".into(), "x".into()]],
            },
            Updategram {
                relation: "s".into(),
                insert: vec![vec!["y".into(), "q2".into()]],
                delete: vec![vec!["x".into(), "p".into()]],
            },
        ];
        maintain(&mut c, &mut v, &grams, Some(MaintenanceChoice::Incremental)).unwrap();
        assert_consistent(&c, &v);
        assert!(v.as_relation().contains(&vec![Value::str("5"), Value::str("r")]));
        assert!(v.as_relation().contains(&vec![Value::str("3"), Value::str("q2")]));
    }

    #[test]
    fn duplicate_supporting_derivations_survive_partial_delete() {
        // v(C) :- r(A, B), s(B, C): tuple "p" derived via A=1 and A=2.
        let mut c = base();
        let mut v = MaterializedView::new("v", parse_query("v(C) :- r(A, B), s(B, C)").unwrap());
        v.refresh_full(&c).unwrap();
        assert_eq!(v.derivations(&vec![Value::str("p")]), 2);
        let g = Updategram::deletes("r", vec![vec!["1".into(), "x".into()]]);
        maintain(&mut c, &mut v, &[g], Some(MaintenanceChoice::Incremental)).unwrap();
        // Still derivable via A=2.
        assert_eq!(v.derivations(&vec![Value::str("p")]), 1);
        assert_consistent(&c, &v);
    }

    #[test]
    fn self_join_maintenance() {
        let mut c = Catalog::new();
        let mut e = Relation::new(RelSchema::text("e", &["a", "b"]));
        for (a, b) in [("1", "2"), ("2", "3")] {
            e.insert(vec![a.into(), b.into()]);
        }
        c.register(e);
        let mut v = MaterializedView::new("v", parse_query("v(X, Z) :- e(X, Y), e(Y, Z)").unwrap());
        v.refresh_full(&c).unwrap();
        assert_eq!(v.len(), 1);
        // Insert an edge that creates paths through BOTH atom positions.
        let g = Updategram::inserts("e", vec![vec!["3".into(), "1".into()]]);
        maintain(&mut c, &mut v, &[g], Some(MaintenanceChoice::Incremental)).unwrap();
        assert_consistent(&c, &v);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn self_join_delta_join_delta() {
        // Inserting a self-loop creates a derivation using the delta in
        // BOTH atom positions — the Δ⋈Δ term naive per-occurrence rules miss.
        let mut c = Catalog::new();
        let mut e = Relation::new(RelSchema::text("e", &["a", "b"]));
        e.insert(vec!["1".into(), "2".into()]);
        c.register(e);
        let mut v = MaterializedView::new("v", parse_query("v(X, Z) :- e(X, Y), e(Y, Z)").unwrap());
        v.refresh_full(&c).unwrap();
        let g = Updategram::inserts("e", vec![vec!["9".into(), "9".into()]]);
        maintain(&mut c, &mut v, &[g], Some(MaintenanceChoice::Incremental)).unwrap();
        assert!(v.as_relation().contains(&vec![Value::str("9"), Value::str("9")]));
        assert_consistent(&c, &v);
    }

    #[test]
    fn self_join_delete() {
        let mut c = Catalog::new();
        let mut e = Relation::new(RelSchema::text("e", &["a", "b"]));
        for (a, b) in [("1", "2"), ("2", "3"), ("3", "1")] {
            e.insert(vec![a.into(), b.into()]);
        }
        c.register(e);
        let mut v = MaterializedView::new("v", parse_query("v(X, Z) :- e(X, Y), e(Y, Z)").unwrap());
        v.refresh_full(&c).unwrap();
        let g = Updategram::deletes("e", vec![vec!["2".into(), "3".into()]]);
        maintain(&mut c, &mut v, &[g], Some(MaintenanceChoice::Incremental)).unwrap();
        assert_consistent(&c, &v);
    }

    #[test]
    fn cost_model_prefers_incremental_for_small_deltas() {
        let mut c = Catalog::new();
        let mut r = Relation::new(RelSchema::text("r", &["a", "b"]));
        for i in 0..10_000 {
            r.insert(vec![Value::Int(i), Value::Int(i % 100)]);
        }
        c.register(r);
        let mut v = MaterializedView::new("v", parse_query("v(B) :- r(A, B)").unwrap());
        v.refresh_full(&c).unwrap();
        let g = Updategram::inserts("r", vec![vec![Value::Int(10_000), Value::Int(5)]]);
        let rep = maintain(&mut c, &mut v, &[g], None).unwrap();
        assert_eq!(rep.choice, MaintenanceChoice::Incremental);
        assert_consistent(&c, &v);
    }

    #[test]
    fn cost_model_prefers_recompute_for_huge_deltas() {
        let mut c = Catalog::new();
        let mut r = Relation::new(RelSchema::text("r", &["a", "b"]));
        r.insert(vec![Value::Int(0), Value::Int(0)]);
        c.register(r);
        let mut v = MaterializedView::new("v", parse_query("v(B) :- r(A, B)").unwrap());
        v.refresh_full(&c).unwrap();
        let big: Vec<Tuple> = (1..500).map(|i| vec![Value::Int(i), Value::Int(i)]).collect();
        let rep = maintain(&mut c, &mut v, &[Updategram::inserts("r", big)], None).unwrap();
        assert_eq!(rep.choice, MaintenanceChoice::Recompute);
        assert_consistent(&c, &v);
    }

    #[test]
    fn forced_recompute_matches_incremental_result() {
        let grams = vec![Updategram {
            relation: "r".into(),
            insert: vec![vec!["9".into(), "x".into()]],
            delete: vec![vec!["3".into(), "y".into()]],
        }];
        let (mut c1, mut c2) = (base(), base());
        let (mut v1, mut v2) = (view(), view());
        v1.refresh_full(&c1).unwrap();
        v2.refresh_full(&c2).unwrap();
        maintain(&mut c1, &mut v1, &grams, Some(MaintenanceChoice::Incremental)).unwrap();
        maintain(&mut c2, &mut v2, &grams, Some(MaintenanceChoice::Recompute)).unwrap();
        assert_eq!(v1.as_relation().rows(), v2.as_relation().rows());
    }

    #[test]
    fn deleting_a_duplicated_row_retracts_every_copy() {
        // Regression: Catalog::delete removes every occurrence, but the
        // delta overlay used to list the deleted row once — leaving one
        // phantom derivation behind for each extra physical copy.
        let mut c = Catalog::new();
        let mut r = Relation::new(RelSchema::text("r", &["a"]));
        r.insert(vec!["x".into()]);
        r.insert(vec!["x".into()]);
        r.insert(vec!["y".into()]);
        c.register(r);
        let mut v = MaterializedView::new("v", parse_query("v(A) :- r(A)").unwrap());
        v.refresh_full(&c).unwrap();
        assert_eq!(v.derivations(&vec![Value::str("x")]), 2);
        let g = Updategram::deletes("r", vec![vec!["x".into()]]);
        maintain(&mut c, &mut v, &[g], Some(MaintenanceChoice::Incremental)).unwrap();
        assert_eq!(v.derivations(&vec![Value::str("x")]), 0);
        assert!(!v.as_relation().contains(&vec![Value::str("x")]));
        assert_consistent(&c, &v);
    }

    #[test]
    fn repeated_delete_rows_in_one_gram_retract_once() {
        // The first physical delete removes the row; the second removes
        // nothing and must not drive derivation counts doubly negative.
        let mut c = base();
        let mut v = view();
        v.refresh_full(&c).unwrap();
        let g = Updategram::deletes(
            "r",
            vec![vec!["1".into(), "x".into()], vec!["1".into(), "x".into()]],
        );
        maintain(&mut c, &mut v, &[g], Some(MaintenanceChoice::Incremental)).unwrap();
        assert_consistent(&c, &v);
        assert_eq!(v.derivations(&vec![Value::str("1"), Value::str("p")]), 0);
    }

    #[test]
    fn gram_to_batch_signs_against_pre_state() {
        let mut c = Catalog::new();
        let mut r = Relation::new(RelSchema::text("r", &["a"]));
        r.insert(vec!["x".into()]);
        r.insert(vec!["x".into()]);
        c.register(r);
        let g = Updategram {
            relation: "r".into(),
            insert: vec![vec!["z".into()], vec!["z".into()]],
            delete: vec![vec!["x".into()], vec!["x".into()], vec!["ghost".into()]],
        };
        let batch = gram_to_batch(&c, &g);
        let d = batch.get("r").unwrap();
        assert_eq!(d.weight(&vec![Value::str("x")]), -2, "both stored copies retract");
        assert_eq!(d.weight(&vec![Value::str("z")]), 2, "insert occurrences count");
        assert_eq!(d.weight(&vec![Value::str("ghost")]), 0, "absent delete is a no-op");
    }

    #[test]
    fn readonly_deltas_do_not_touch_the_catalog() {
        let c = base();
        let before = c.get("r").unwrap().sorted();
        let def = parse_query("v(A, C) :- r(A, B), s(B, C)").unwrap();
        let g = Updategram::deletes("r", vec![vec!["1".into(), "x".into()]]);
        let deltas = derivation_deltas_readonly(&c, &def, &g).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].1, -1);
        assert_eq!(c.get("r").unwrap().sorted().rows(), before.rows());
    }

    #[test]
    fn updategram_on_unrelated_relation_is_noop_for_view() {
        let mut c = base();
        c.create(RelSchema::text("t", &["z"]));
        let mut v = view();
        v.refresh_full(&c).unwrap();
        let before = v.as_relation();
        let g = Updategram::inserts("t", vec![vec!["new".into()]]);
        maintain(&mut c, &mut v, &[g], Some(MaintenanceChoice::Incremental)).unwrap();
        assert_eq!(v.as_relation().rows(), before.rows());
        assert_eq!(c.get("t").unwrap().len(), 1);
    }
}
