//! # REVERE — Crossing the Structure Chasm
//!
//! A full reproduction of the system sketched in *Crossing the Structure
//! Chasm* (Halevy, Etzioni, Doan, Ives, McDowell, Tatarinov, Madhavan —
//! CIDR 2003). REVERE attacks the gap between the unstructured world
//! (easy authoring, keyword search, graceful degradation) and the
//! structured world (schemas, exact queries, brittle sharing) with three
//! coupled components:
//!
//! 1. **MANGROVE** ([`mangrove`]) — in-place annotation of HTML,
//!    publish-to-visible instant gratification applications, and deferred
//!    integrity constraints with provenance-based cleaning.
//! 2. **Piazza** ([`pdms`]) — a peer data management system: GLAV mappings
//!    between pairs of peers, query reformulation over the transitive
//!    closure of the mapping graph, XML mapping templates, materialized
//!    views and updategram-based incremental maintenance.
//! 3. **Statistics over structures** ([`corpus`]) — a corpus of schemas
//!    with term-usage/co-occurrence statistics, LSD-style multi-strategy
//!    matchers, the `DesignAdvisor` and `MatchingAdvisor` tools, and
//!    keyword-to-query reformulation.
//!
//! Substrates built for the reproduction: an XML data model ([`xml`]), a
//! relational + triple storage engine ([`storage`]), a conjunctive-query
//! stack with containment, MiniCon and GAV unfolding ([`query`]), and
//! deterministic workload generators ([`workload`]).
//!
//! ## Quickstart
//!
//! ```
//! use revere::prelude::*;
//!
//! // A two-peer PDMS: pose the query at MIT, get Berkeley's data too.
//! let mut net = PdmsNetwork::new();
//! for (name, rel) in [("MIT", "subject"), ("Berkeley", "course")] {
//!     let mut peer = Peer::new(name);
//!     let mut data = Relation::new(RelSchema::text(rel, &["title"]));
//!     data.insert(vec![Value::str(format!("{name} special topics"))]);
//!     peer.add_relation(data);
//!     net.add_peer(peer);
//! }
//! net.add_mapping(GlavMapping::parse(
//!     "m", "Berkeley", "MIT",
//!     "m(T) :- Berkeley.course(T) ==> m(T) :- MIT.subject(T)",
//! ).unwrap());
//! let out = net.query_str("MIT", "q(T) :- MIT.subject(T)").unwrap();
//! assert_eq!(out.answers.len(), 2);
//! ```

pub use revere_corpus as corpus;
pub use revere_mangrove as mangrove;
pub use revere_pdms as pdms;
pub use revere_query as query;
pub use revere_storage as storage;
pub use revere_workload as workload;
pub use revere_xml as xml;

/// The commonly-used types, one `use` away.
pub mod prelude {
    pub use revere_corpus::{
        Corpus, CorpusEntry, CorpusStats, DesignAdvisor, Learner, MatchQuality, MatchingAdvisor,
        MultiStrategyClassifier, QueryReformulator,
    };
    pub use revere_mangrove::{
        CleaningPolicy, CourseCalendar, CrawlBaseline, Mangrove, MangroveSchema, PhoneDirectory,
        WhosWho,
    };
    pub use revere_pdms::fault::{FaultPlan, FaultSpec, RetryPolicy};
    pub use revere_pdms::obs::{
        LogSink, Metrics, MetricsSnapshot, Obs, ObsConfig, SpanHandle, Tracer,
    };
    pub use revere_pdms::{
        apply_once, apply_once_dataflow, apply_updategrams, derivation_deltas_readonly,
        gram_to_batch, maintain, CacheStats, CompletenessReport, DataflowView, GramInbox, Health,
        IvmStrategy, MaintenanceChoice, MaterializedView, Monitor, MonitorConfig, MonitorEvent,
        PdmsNetwork, Peer, PeerAccounting, PeerVitals, PublishReport, QueryBudget, QueryOutcome,
        ReformulateOptions, Reformulator, ReliableLink, SequencedGram, Subscription, Updategram,
        XmlMapping,
    };
    pub use revere_query::{
        contained_in, eval_cq, eval_cq_bag, eval_cq_bag_planned, eval_cq_bag_planned_mode,
        eval_cq_bag_planned_vec, eval_cq_bag_profiled_obs, eval_cq_bag_profiled_obs_mode,
        eval_cq_bag_profiled_obs_row, eval_cq_bag_profiled_obs_vec, eval_cq_bag_traced,
        eval_cq_bindings_mode, eval_cq_bindings_vec,
        eval_naive, eval_naive_bag, eval_naive_union, eval_union, explain_analyze,
        explain_analyze_with, minimize, parse_query, plan_cq, plan_cq_opts, plan_cq_with, q_error,
        rewrite_using_views, unfold_with, AggFn, AggregateState, Arrangement, Circuit,
        ConjunctiveQuery, Delta, DeltaBatch, DistinctState, ExecMode, ExplainAnalyze, GlavMapping,
        JoinState, Plan, Selectivity, StepProfile, Strategy, UnionQuery, VecOpts, ViewDef,
    };
    pub use revere_storage::{
        row_deltas, Catalog, ColumnVec, ColumnarBatch, DbSchema, Journal, RelSchema, Relation,
        SelBitmap, TripleStore, Value, WalRecord,
    };
    pub use revere_workload::{
        course_templates, PageGenerator, QueryMix, Topology, TopologyKind, University,
        UniversityGenerator,
    };
    pub use revere_xml::{parse as parse_xml, Document, Dtd, Path as XmlPath};
}
