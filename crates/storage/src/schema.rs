//! Relation and database schemas.
//!
//! These types are the unit of discourse for most of the paper: peer
//! schemas (§3), the corpus of schemas (§4.1), the matchers (§4.3.2) and the
//! DesignAdvisor (§4.3.1) all consume and produce [`RelSchema`]s and
//! [`DbSchema`]s.

use std::fmt;

/// Declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrType {
    /// Free text.
    Text,
    /// Integer.
    Int,
    /// Floating point.
    Float,
    /// Boolean.
    Bool,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Text => "text",
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Bool => "bool",
        };
        write!(f, "{s}")
    }
}

/// A named, typed attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name, e.g. `course_title`.
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
}

impl Attribute {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute { name: name.into(), ty }
    }

    /// Shorthand for a text attribute (by far the most common in the
    /// paper's web-data domains).
    pub fn text(name: impl Into<String>) -> Self {
        Attribute::new(name, AttrType::Text)
    }

    /// Shorthand for an integer attribute.
    pub fn int(name: impl Into<String>) -> Self {
        Attribute::new(name, AttrType::Int)
    }
}

/// Schema of one relation: a name plus ordered attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelSchema {
    /// Relation name, e.g. `course`.
    pub name: String,
    /// Attributes in declaration order.
    pub attrs: Vec<Attribute>,
}

impl RelSchema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(name: impl Into<String>, attrs: Vec<Attribute>) -> Self {
        RelSchema { name: name.into(), attrs }
    }

    /// Build an all-text schema from attribute names — the common case for
    /// web-extracted data.
    pub fn text(name: impl Into<String>, attrs: &[&str]) -> Self {
        RelSchema {
            name: name.into(),
            attrs: attrs.iter().map(|a| Attribute::text(*a)).collect(),
        }
    }

    /// Number of attributes (the relation's arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of an attribute by name.
    pub fn position(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == attr)
    }

    /// Attribute names in order.
    pub fn attr_names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|a| a.name.as_str())
    }
}

impl fmt::Display for RelSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

/// Schema of a whole database / peer: a set of relation schemas.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DbSchema {
    /// Owning peer / database name (e.g. `Berkeley`).
    pub name: String,
    /// Relation schemas in declaration order.
    pub relations: Vec<RelSchema>,
}

impl DbSchema {
    /// Create an empty database schema.
    pub fn new(name: impl Into<String>) -> Self {
        DbSchema { name: name.into(), relations: Vec::new() }
    }

    /// Add a relation schema (builder style).
    pub fn with(mut self, rel: RelSchema) -> Self {
        self.relations.push(rel);
        self
    }

    /// Look up a relation schema by name.
    pub fn relation(&self, name: &str) -> Option<&RelSchema> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// Total number of elements (relations + attributes): the denominator
    /// in DesignAdvisor's `fit` measure (§4.3.1).
    pub fn element_count(&self) -> usize {
        self.relations.len() + self.relations.iter().map(RelSchema::arity).sum::<usize>()
    }

    /// Every `(relation, attribute)` pair, flattened — the elements the
    /// matchers classify.
    pub fn elements(&self) -> impl Iterator<Item = (&str, &str)> {
        self.relations
            .iter()
            .flat_map(|r| r.attrs.iter().map(move |a| (r.name.as_str(), a.name.as_str())))
    }
}

impl fmt::Display for DbSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema {} {{", self.name)?;
        for r in &self.relations {
            writeln!(f, "  {r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn course() -> RelSchema {
        RelSchema::new(
            "course",
            vec![
                Attribute::text("title"),
                Attribute::text("instructor"),
                Attribute::int("size"),
            ],
        )
    }

    #[test]
    fn positions_and_arity() {
        let c = course();
        assert_eq!(c.arity(), 3);
        assert_eq!(c.position("instructor"), Some(1));
        assert_eq!(c.position("nope"), None);
    }

    #[test]
    fn db_schema_lookup_and_count() {
        let db = DbSchema::new("Berkeley")
            .with(course())
            .with(RelSchema::text("dept", &["name", "college"]));
        assert!(db.relation("dept").is_some());
        // 2 relations + 3 attrs + 2 attrs
        assert_eq!(db.element_count(), 7);
        assert_eq!(db.elements().count(), 5);
    }

    #[test]
    fn display_is_readable() {
        let s = course().to_string();
        assert_eq!(s, "course(title: text, instructor: text, size: int)");
    }
}
