//! Hash indexes over relation columns.
//!
//! The cost model that chooses between incremental updategram maintenance
//! and full view recomputation (§3.1.2) depends on index availability;
//! [`HashIndex`] is the structure the engine and the PDMS views build.

use crate::relation::{Relation, Tuple};
use crate::value::Value;
use std::collections::HashMap;

/// A hash index mapping a key (the values of one or more columns) to the
/// positions of matching rows in the indexed relation.
#[derive(Debug, Clone)]
pub struct HashIndex {
    /// The indexed column positions, in key order.
    pub key_cols: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<usize>>,
}

impl HashIndex {
    /// Build an index over `key_cols` of `rel`.
    pub fn build(rel: &Relation, key_cols: &[usize]) -> Self {
        let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rel.len());
        for (pos, row) in rel.iter().enumerate() {
            let key: Vec<Value> = key_cols.iter().map(|&c| row[c].clone()).collect();
            map.entry(key).or_default().push(pos);
        }
        HashIndex { key_cols: key_cols.to_vec(), map }
    }

    /// Build an index over named attributes.
    ///
    /// Returns `None` if any attribute is not in the schema.
    pub fn build_on(rel: &Relation, attrs: &[&str]) -> Option<Self> {
        let cols: Option<Vec<usize>> = attrs.iter().map(|a| rel.schema.position(a)).collect();
        Some(Self::build(rel, &cols?))
    }

    /// Row positions whose key columns equal `key`.
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Probe with a full row from another relation, extracting the key from
    /// the given columns of that row.
    pub fn probe(&self, row: &Tuple, probe_cols: &[usize]) -> &[usize] {
        let key: Vec<Value> = probe_cols.iter().map(|&c| row[c].clone()).collect();
        self.map.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Register a newly appended row (at position `pos`) without rebuilding.
    pub fn insert(&mut self, row: &Tuple, pos: usize) {
        let key: Vec<Value> = self.key_cols.iter().map(|&c| row[c].clone()).collect();
        self.map.entry(key).or_default().push(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;

    fn rel() -> Relation {
        let mut r = Relation::new(RelSchema::text("teaches", &["prof", "course"]));
        r.insert(vec![Value::str("ada"), Value::str("db")]);
        r.insert(vec![Value::str("bob"), Value::str("os")]);
        r.insert(vec![Value::str("ada"), Value::str("ir")]);
        r
    }

    #[test]
    fn lookup_finds_all_matches() {
        let r = rel();
        let idx = HashIndex::build_on(&r, &["prof"]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("ada")]), &[0, 2]);
        assert_eq!(idx.lookup(&[Value::str("eve")]), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn composite_keys() {
        let r = rel();
        let idx = HashIndex::build_on(&r, &["prof", "course"]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("ada"), Value::str("ir")]), &[2]);
    }

    #[test]
    fn incremental_insert() {
        let mut r = rel();
        let mut idx = HashIndex::build_on(&r, &["prof"]).unwrap();
        let row = vec![Value::str("eve"), Value::str("ml")];
        r.insert(row.clone());
        idx.insert(&row, 3);
        assert_eq!(idx.lookup(&[Value::str("eve")]), &[3]);
    }

    #[test]
    fn unknown_attr_yields_none() {
        assert!(HashIndex::build_on(&rel(), &["nope"]).is_none());
    }
}
