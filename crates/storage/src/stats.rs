//! Per-relation / per-column data statistics.
//!
//! §3.1.2 sketches a cost-based choice between maintenance strategies;
//! the same discipline applies to join ordering: "answering queries most
//! efficiently" needs estimates of how many tuples each subgoal will
//! produce. [`RelStats`] keeps, for every column of a relation, the row
//! count, the distinct-value count, and the full value-frequency
//! histogram (whose top-k projection is the classic most-common-values
//! list). Statistics are maintained *incrementally* on insert/delete —
//! the planner never pays a scan to stay informed — and exposed through
//! [`crate::Catalog`], which also carries a monotonically increasing
//! *stats epoch* so plan caches can tell fresh estimates from stale ones.

use crate::relation::{Relation, Tuple};
use crate::value::Value;
use std::collections::BTreeMap;

/// Frequency statistics for one column.
///
/// The histogram is exact (this is an in-memory engine; relations are
/// small enough that a full value→count map is cheaper than the sketches
/// a disk-based system would use). [`ColumnStats::most_common`] projects
/// the MCV list a traditional optimizer would persist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnStats {
    counts: BTreeMap<Value, usize>,
}

impl ColumnStats {
    /// Number of distinct values currently in the column.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Occurrences of `v` in the column (0 if absent).
    pub fn count_of(&self, v: &Value) -> usize {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// The `k` most common values with their counts, most frequent first
    /// (ties broken by value order, so the list is deterministic).
    pub fn most_common(&self, k: usize) -> Vec<(&Value, usize)> {
        let mut all: Vec<(&Value, usize)> = self.counts.iter().map(|(v, &c)| (v, c)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        all.truncate(k);
        all
    }

    /// Iterate over the full value→count histogram in value order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, usize)> {
        self.counts.iter().map(|(v, &c)| (v, c))
    }

    fn note(&mut self, v: &Value, delta: isize) {
        let c = self.counts.entry(v.clone()).or_insert(0);
        if delta >= 0 {
            *c += delta as usize;
        } else {
            *c = c.saturating_sub((-delta) as usize);
            if *c == 0 {
                self.counts.remove(v);
            }
        }
    }
}

/// Statistics for one relation: row count plus per-column histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Current row count (bag cardinality).
    pub rows: usize,
    /// One [`ColumnStats`] per schema column, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl RelStats {
    /// Compute statistics from scratch with one scan.
    pub fn compute(rel: &Relation) -> RelStats {
        let mut s = RelStats {
            rows: 0,
            columns: vec![ColumnStats::default(); rel.schema.arity()],
        };
        for row in rel.iter() {
            s.note_insert(row);
        }
        s
    }

    /// Account for one appended row.
    pub fn note_insert(&mut self, row: &Tuple) {
        self.rows += 1;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.note(v, 1);
        }
    }

    /// Account for one removed row.
    ///
    /// The caller must only report rows that were *actually* removed:
    /// noting a row that was never present decrements `rows` while the
    /// column histograms (which saturate at zero) may not shrink, silently
    /// desyncing the stats. Delete paths that may miss should use
    /// [`RelStats::note_delete_n`] with the count the relation reported.
    pub fn note_delete(&mut self, row: &[Value]) {
        self.note_delete_n(row, 1);
    }

    /// Account for `n` removed copies of `row` — `n` as reported by
    /// [`Relation::delete`], so a delete-of-absent (`n == 0`) is a no-op
    /// instead of a silent desync.
    pub fn note_delete_n(&mut self, row: &[Value], n: usize) {
        if n == 0 {
            return;
        }
        self.rows = self.rows.saturating_sub(n);
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.note(v, -(n as isize));
        }
    }

    /// Distinct values in column `col` (0 for out-of-range columns).
    pub fn distinct(&self, col: usize) -> usize {
        self.columns.get(col).map(ColumnStats::distinct).unwrap_or(0)
    }

    /// Estimated fraction of rows whose column `col` equals `v`.
    ///
    /// The histogram is exact, so a present value gets its true
    /// frequency. An absent value truly matches nothing *right now*, but
    /// the estimate stays a small positive floor rather than zero: the
    /// planner uses these numbers to rank join orders, and a hard zero
    /// would make every order look equally (and misleadingly) free.
    pub fn selectivity_eq(&self, col: usize, v: &Value) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        match self.columns.get(col).map(|c| c.count_of(v)) {
            Some(n) if n > 0 => n as f64 / self.rows as f64,
            _ => 0.5 / self.rows as f64,
        }
    }

    /// Estimated fraction of rows where columns `a` and `b` hold the same
    /// value (a within-atom self-join): `1 / max(distinct(a), distinct(b))`.
    pub fn selectivity_self_join(&self, a: usize, b: usize) -> f64 {
        let d = self.distinct(a).max(self.distinct(b)).max(1);
        1.0 / d as f64
    }
}

/// MCV-vs-MCV equijoin overlap: the probability that a random row of `a`
/// and a random row of `b` agree on the given columns, `Σ_v fA(v)·fB(v)`.
///
/// The histograms are exact, so this is the exact match probability under
/// row independence — it degrades gracefully to the classic
/// `1/max(d1,d2)` only when both columns are uniform with containment,
/// which is precisely the assumption it replaces. Disjoint columns get a
/// small positive floor (mirroring [`RelStats::selectivity_eq`]) so the
/// planner still ranks orders instead of seeing a wall of zeros. Returns
/// `None` when either column is missing or either relation is empty.
pub fn mcv_join_overlap(a: &RelStats, a_col: usize, b: &RelStats, b_col: usize) -> Option<f64> {
    if a.rows == 0 || b.rows == 0 {
        return None;
    }
    let (ca, cb) = (a.columns.get(a_col)?, b.columns.get(b_col)?);
    // Walk the smaller histogram, probe the larger one.
    let (small, large) = if ca.distinct() <= cb.distinct() { (ca, cb) } else { (cb, ca) };
    let mut matches = 0usize;
    for (v, n) in small.iter() {
        matches += n * large.count_of(v);
    }
    let total = (a.rows * b.rows) as f64;
    if matches == 0 {
        Some(0.5 / total)
    } else {
        Some(matches as f64 / total)
    }
}

/// One learned join-overlap observation: the selectivity measured from an
/// executed hash join, plus how many times the pair has been observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinObservation {
    /// Measured `bindings / (probes · build_rows)` from the last
    /// execution that exceeded the re-plan threshold.
    pub selectivity: f64,
    /// How many executions have reported this pair.
    pub observations: u64,
}

/// A normalized `(relation, column)` pair identifying one equijoin edge.
/// Sides are ordered lexicographically so `(A.x, B.y)` and `(B.y, A.x)`
/// share one entry.
pub type JoinKey = ((String, usize), (String, usize));

fn join_key(rel_a: &str, col_a: usize, rel_b: &str, col_b: usize) -> JoinKey {
    let a = (rel_a.to_string(), col_a);
    let b = (rel_b.to_string(), col_b);
    if a <= b { (a, b) } else { (b, a) }
}

/// Learned equijoin selectivities keyed by normalized column pair.
///
/// This is the feedback half of the estimator: the PDMS records observed
/// build/probe hit rates from executed hash joins here, and the planner
/// prefers a recorded overlap over any model-based estimate. Everything
/// is a `BTreeMap` of values derived from integer counts, so two
/// identical runs produce byte-identical stores ([`JoinStats::dump`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinStats {
    entries: BTreeMap<JoinKey, JoinObservation>,
}

impl JoinStats {
    /// The learned selectivity for a column pair, if one was recorded.
    pub fn overlap(&self, rel_a: &str, col_a: usize, rel_b: &str, col_b: usize) -> Option<f64> {
        self.entries.get(&join_key(rel_a, col_a, rel_b, col_b)).map(|o| o.selectivity)
    }

    /// Record an observed selectivity for a column pair. Returns `true`
    /// when the stored estimate materially changed — callers use this to
    /// decide whether caches keyed on the stats epoch must be invalidated
    /// (a re-observation of the same value must not flush warm caches).
    pub fn note(&mut self, rel_a: &str, col_a: usize, rel_b: &str, col_b: usize, sel: f64) -> bool {
        let entry = self
            .entries
            .entry(join_key(rel_a, col_a, rel_b, col_b))
            .or_insert(JoinObservation { selectivity: f64::NAN, observations: 0 });
        entry.observations += 1;
        let changed = !(entry.selectivity == sel
            || (entry.selectivity - sel).abs() <= 1e-9 * entry.selectivity.abs());
        entry.selectivity = sel;
        changed
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over recorded pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&JoinKey, &JoinObservation)> {
        self.entries.iter()
    }

    /// The subset of entries whose key mentions `rel` (either side).
    pub fn mentioning(&self, rel: &str) -> JoinStats {
        JoinStats {
            entries: self
                .entries
                .iter()
                .filter(|((a, b), _)| a.0 == rel || b.0 == rel)
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Remove every entry whose key mentions (on either side) a relation
    /// for which `drop_rel` returns true. Returns how many entries were
    /// removed. Used when a peer departs: its learned selectivities must
    /// not keep steering other peers' planners.
    pub fn purge_where(&mut self, drop_rel: impl Fn(&str) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(a, b), _| !drop_rel(&a.0) && !drop_rel(&b.0));
        before - self.entries.len()
    }

    /// Restore an exact observation (selectivity *and* observation count),
    /// bypassing the material-change accounting of [`JoinStats::note`].
    /// Used by snapshot decoding, where the store must round-trip
    /// byte-identically.
    pub fn restore(
        &mut self,
        rel_a: &str,
        col_a: usize,
        rel_b: &str,
        col_b: usize,
        obs: JoinObservation,
    ) {
        self.entries.insert(join_key(rel_a, col_a, rel_b, col_b), obs);
    }

    /// Merge `other` into `self`, overwriting overlapping keys (the
    /// incoming side is the fresher observation).
    pub fn absorb(&mut self, other: &JoinStats) {
        for (k, v) in &other.entries {
            self.entries.insert(k.clone(), *v);
        }
    }

    /// Deterministic one-line-per-entry rendering, for byte-identity
    /// assertions in determinism tests.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (((ra, ca), (rb, cb)), o) in &self.entries {
            let _ = writeln!(
                out,
                "{ra}[{ca}] ⋈ {rb}[{cb}]  sel {:.6e}  obs {}",
                o.selectivity, o.observations
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;

    fn rel() -> Relation {
        let mut r = Relation::new(RelSchema::text("t", &["a", "b"]));
        r.insert(vec!["x".into(), "1".into()]);
        r.insert(vec!["x".into(), "2".into()]);
        r.insert(vec!["y".into(), "1".into()]);
        r
    }

    #[test]
    fn compute_counts_rows_and_distincts() {
        let s = RelStats::compute(&rel());
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct(0), 2);
        assert_eq!(s.distinct(1), 2);
        assert_eq!(s.columns[0].count_of(&"x".into()), 2);
    }

    #[test]
    fn incremental_matches_recompute() {
        let mut r = rel();
        let mut s = RelStats::compute(&r);
        let row = vec![Value::str("z"), Value::str("1")];
        r.insert(row.clone());
        s.note_insert(&row);
        assert_eq!(s, RelStats::compute(&r));
        let gone = vec![Value::str("x"), Value::str("1")];
        r.delete(&gone);
        s.note_delete(&gone);
        assert_eq!(s, RelStats::compute(&r));
        // Delete-of-absent: the relation reports 0 rows removed, and
        // noting that count leaves the stats untouched (the old
        // `note_delete` path would desync rows vs histograms here).
        let absent = vec![Value::str("ghost"), Value::str("9")];
        let removed = r.delete(&absent);
        assert_eq!(removed, 0);
        s.note_delete_n(&absent, removed);
        assert_eq!(s, RelStats::compute(&r));
        // A row that exists twice is noted with its true count.
        let dup = vec![Value::str("d"), Value::str("5")];
        r.insert(dup.clone());
        r.insert(dup.clone());
        s.note_insert(&dup);
        s.note_insert(&dup);
        let removed = r.delete(&dup);
        assert_eq!(removed, 2);
        s.note_delete_n(&dup, removed);
        assert_eq!(s, RelStats::compute(&r));
    }

    #[test]
    fn most_common_is_deterministic_and_sorted() {
        let s = RelStats::compute(&rel());
        let mcv = s.columns[0].most_common(2);
        assert_eq!(mcv[0], (&Value::str("x"), 2));
        assert_eq!(mcv[1], (&Value::str("y"), 1));
        assert_eq!(s.columns[0].most_common(1).len(), 1);
    }

    #[test]
    fn selectivities() {
        let s = RelStats::compute(&rel());
        assert!((s.selectivity_eq(0, &"x".into()) - 2.0 / 3.0).abs() < 1e-9);
        // Absent value: small positive floor, not zero.
        let absent = s.selectivity_eq(0, &"nope".into());
        assert!(absent > 0.0 && absent < 0.2);
        assert!((s.selectivity_self_join(0, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_relation_stats() {
        let r = Relation::new(RelSchema::text("t", &["a"]));
        let s = RelStats::compute(&r);
        assert_eq!(s.rows, 0);
        assert_eq!(s.distinct(0), 0);
        assert_eq!(s.selectivity_eq(0, &"x".into()), 0.0);
    }

    #[test]
    fn mcv_overlap_is_exact_match_probability() {
        // a.b = {1, 1, 2}; rel column 1 has "1" twice, "2" once.
        let a = RelStats::compute(&rel());
        // Self-overlap on column 1: (2·2 + 1·1) / (3·3) = 5/9.
        let sel = mcv_join_overlap(&a, 1, &a, 1).unwrap();
        assert!((sel - 5.0 / 9.0).abs() < 1e-9, "got {sel}");
        // Under uniform containment it reduces to 1/max(d1,d2).
        let mut u = Relation::new(RelSchema::text("u", &["k"]));
        for k in 0..4 {
            u.insert(vec![Value::str(format!("{k}"))]);
        }
        let su = RelStats::compute(&u);
        let sel = mcv_join_overlap(&su, 0, &su, 0).unwrap();
        assert!((sel - 0.25).abs() < 1e-9, "uniform self-overlap should be 1/d, got {sel}");
        // Disjoint columns: small positive floor, never zero.
        let mut w = Relation::new(RelSchema::text("w", &["k"]));
        w.insert(vec![Value::str("elsewhere")]);
        let sw = RelStats::compute(&w);
        let sel = mcv_join_overlap(&su, 0, &sw, 0).unwrap();
        assert!(sel > 0.0 && sel < 0.25, "disjoint floor, got {sel}");
        // Missing column or empty relation: no estimate.
        assert_eq!(mcv_join_overlap(&su, 7, &sw, 0), None);
        let empty = RelStats::compute(&Relation::new(RelSchema::text("e", &["k"])));
        assert_eq!(mcv_join_overlap(&su, 0, &empty, 0), None);
    }

    #[test]
    fn join_stats_normalize_keys_and_report_material_change() {
        let mut js = JoinStats::default();
        assert!(js.is_empty());
        assert!(js.note("B.r", 1, "A.r", 0, 0.125), "first observation is a change");
        // Symmetric lookup through the normalized key.
        assert_eq!(js.overlap("A.r", 0, "B.r", 1), Some(0.125));
        assert_eq!(js.overlap("B.r", 1, "A.r", 0), Some(0.125));
        assert_eq!(js.overlap("A.r", 0, "B.r", 0), None);
        // Re-observing the same value is not a material change...
        assert!(!js.note("A.r", 0, "B.r", 1, 0.125));
        // ...but a different value is.
        assert!(js.note("A.r", 0, "B.r", 1, 0.5));
        assert_eq!(js.len(), 1);
        // The dump is deterministic and carries the observation count.
        assert_eq!(js.dump(), "A.r[0] ⋈ B.r[1]  sel 5.000000e-1  obs 3\n");
    }

    #[test]
    fn join_stats_filter_and_absorb() {
        let mut js = JoinStats::default();
        js.note("A.r", 0, "B.r", 0, 0.1);
        js.note("B.r", 1, "C.r", 0, 0.2);
        let only_a = js.mentioning("A.r");
        assert_eq!(only_a.len(), 1);
        assert_eq!(only_a.overlap("A.r", 0, "B.r", 0), Some(0.1));
        let mut other = JoinStats::default();
        other.note("A.r", 0, "B.r", 0, 0.9);
        js.absorb(&other);
        assert_eq!(js.len(), 2);
        assert_eq!(js.overlap("A.r", 0, "B.r", 0), Some(0.9), "absorb overwrites");
    }
}
