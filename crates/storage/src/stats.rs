//! Per-relation / per-column data statistics.
//!
//! §3.1.2 sketches a cost-based choice between maintenance strategies;
//! the same discipline applies to join ordering: "answering queries most
//! efficiently" needs estimates of how many tuples each subgoal will
//! produce. [`RelStats`] keeps, for every column of a relation, the row
//! count, the distinct-value count, and the full value-frequency
//! histogram (whose top-k projection is the classic most-common-values
//! list). Statistics are maintained *incrementally* on insert/delete —
//! the planner never pays a scan to stay informed — and exposed through
//! [`crate::Catalog`], which also carries a monotonically increasing
//! *stats epoch* so plan caches can tell fresh estimates from stale ones.

use crate::relation::{Relation, Tuple};
use crate::value::Value;
use std::collections::BTreeMap;

/// Frequency statistics for one column.
///
/// The histogram is exact (this is an in-memory engine; relations are
/// small enough that a full value→count map is cheaper than the sketches
/// a disk-based system would use). [`ColumnStats::most_common`] projects
/// the MCV list a traditional optimizer would persist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnStats {
    counts: BTreeMap<Value, usize>,
}

impl ColumnStats {
    /// Number of distinct values currently in the column.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Occurrences of `v` in the column (0 if absent).
    pub fn count_of(&self, v: &Value) -> usize {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// The `k` most common values with their counts, most frequent first
    /// (ties broken by value order, so the list is deterministic).
    pub fn most_common(&self, k: usize) -> Vec<(&Value, usize)> {
        let mut all: Vec<(&Value, usize)> = self.counts.iter().map(|(v, &c)| (v, c)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        all.truncate(k);
        all
    }

    fn note(&mut self, v: &Value, delta: isize) {
        let c = self.counts.entry(v.clone()).or_insert(0);
        if delta >= 0 {
            *c += delta as usize;
        } else {
            *c = c.saturating_sub((-delta) as usize);
            if *c == 0 {
                self.counts.remove(v);
            }
        }
    }
}

/// Statistics for one relation: row count plus per-column histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Current row count (bag cardinality).
    pub rows: usize,
    /// One [`ColumnStats`] per schema column, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl RelStats {
    /// Compute statistics from scratch with one scan.
    pub fn compute(rel: &Relation) -> RelStats {
        let mut s = RelStats {
            rows: 0,
            columns: vec![ColumnStats::default(); rel.schema.arity()],
        };
        for row in rel.iter() {
            s.note_insert(row);
        }
        s
    }

    /// Account for one appended row.
    pub fn note_insert(&mut self, row: &Tuple) {
        self.rows += 1;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.note(v, 1);
        }
    }

    /// Account for one removed row.
    pub fn note_delete(&mut self, row: &Tuple) {
        self.rows = self.rows.saturating_sub(1);
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.note(v, -1);
        }
    }

    /// Distinct values in column `col` (0 for out-of-range columns).
    pub fn distinct(&self, col: usize) -> usize {
        self.columns.get(col).map(ColumnStats::distinct).unwrap_or(0)
    }

    /// Estimated fraction of rows whose column `col` equals `v`.
    ///
    /// The histogram is exact, so a present value gets its true
    /// frequency. An absent value truly matches nothing *right now*, but
    /// the estimate stays a small positive floor rather than zero: the
    /// planner uses these numbers to rank join orders, and a hard zero
    /// would make every order look equally (and misleadingly) free.
    pub fn selectivity_eq(&self, col: usize, v: &Value) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        match self.columns.get(col).map(|c| c.count_of(v)) {
            Some(n) if n > 0 => n as f64 / self.rows as f64,
            _ => 0.5 / self.rows as f64,
        }
    }

    /// Estimated fraction of rows where columns `a` and `b` hold the same
    /// value (a within-atom self-join): `1 / max(distinct(a), distinct(b))`.
    pub fn selectivity_self_join(&self, a: usize, b: usize) -> f64 {
        let d = self.distinct(a).max(self.distinct(b)).max(1);
        1.0 / d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;

    fn rel() -> Relation {
        let mut r = Relation::new(RelSchema::text("t", &["a", "b"]));
        r.insert(vec!["x".into(), "1".into()]);
        r.insert(vec!["x".into(), "2".into()]);
        r.insert(vec!["y".into(), "1".into()]);
        r
    }

    #[test]
    fn compute_counts_rows_and_distincts() {
        let s = RelStats::compute(&rel());
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct(0), 2);
        assert_eq!(s.distinct(1), 2);
        assert_eq!(s.columns[0].count_of(&"x".into()), 2);
    }

    #[test]
    fn incremental_matches_recompute() {
        let mut r = rel();
        let mut s = RelStats::compute(&r);
        let row = vec![Value::str("z"), Value::str("1")];
        r.insert(row.clone());
        s.note_insert(&row);
        assert_eq!(s, RelStats::compute(&r));
        let gone = vec![Value::str("x"), Value::str("1")];
        r.delete(&gone);
        s.note_delete(&gone);
        assert_eq!(s, RelStats::compute(&r));
    }

    #[test]
    fn most_common_is_deterministic_and_sorted() {
        let s = RelStats::compute(&rel());
        let mcv = s.columns[0].most_common(2);
        assert_eq!(mcv[0], (&Value::str("x"), 2));
        assert_eq!(mcv[1], (&Value::str("y"), 1));
        assert_eq!(s.columns[0].most_common(1).len(), 1);
    }

    #[test]
    fn selectivities() {
        let s = RelStats::compute(&rel());
        assert!((s.selectivity_eq(0, &"x".into()) - 2.0 / 3.0).abs() < 1e-9);
        // Absent value: small positive floor, not zero.
        let absent = s.selectivity_eq(0, &"nope".into());
        assert!(absent > 0.0 && absent < 0.2);
        assert!((s.selectivity_self_join(0, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_relation_stats() {
        let r = Relation::new(RelSchema::text("t", &["a"]));
        let s = RelStats::compute(&r);
        assert_eq!(s.rows, 0);
        assert_eq!(s.distinct(0), 0);
        assert_eq!(s.selectivity_eq(0, &"x".into()), 0.0);
    }
}
