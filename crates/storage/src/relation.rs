//! In-memory relations: bags of tuples under a [`RelSchema`].

use crate::schema::RelSchema;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// One row of a relation.
pub type Tuple = Vec<Value>;

/// A bag of tuples conforming to a schema.
///
/// Relations are bags, not sets — MANGROVE explicitly admits "partial,
/// redundant, or conflicting information" (§2.1), so duplicates are
/// preserved unless [`Relation::distinct`] is called.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// The schema this relation conforms to.
    pub schema: RelSchema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new(schema: RelSchema) -> Self {
        Relation { schema, rows: Vec::new() }
    }

    /// Create a relation pre-filled with rows.
    ///
    /// # Panics
    /// Panics if any row's arity differs from the schema's.
    pub fn with_rows(schema: RelSchema, rows: Vec<Tuple>) -> Self {
        for row in &rows {
            assert_eq!(
                row.len(),
                schema.arity(),
                "row arity {} != schema arity {} for {}",
                row.len(),
                schema.arity(),
                schema.name
            );
        }
        Relation { schema, rows }
    }

    /// Append a tuple.
    ///
    /// # Panics
    /// Panics if the tuple's arity differs from the schema's.
    pub fn insert(&mut self, row: Tuple) {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row arity {} != schema arity {} for {}",
            row.len(),
            self.schema.arity(),
            self.schema.name
        );
        self.rows.push(row);
    }

    /// Remove every occurrence of `row`; returns how many were removed.
    pub fn delete(&mut self, row: &[Value]) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| r.as_slice() != row);
        before - self.rows.len()
    }

    /// Number of tuples (bag cardinality).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrow the rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Iterate over rows.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// True if `row` occurs at least once.
    pub fn contains(&self, row: &Tuple) -> bool {
        self.rows.iter().any(|r| r == row)
    }

    /// Bag-preserving sorted copy: same multiset of rows in a canonical
    /// order. Two evaluations are bag-equivalent iff their `sorted()`
    /// rows are equal — what the differential query oracle compares.
    pub fn sorted(&self) -> Relation {
        let mut rows = self.rows.clone();
        rows.sort();
        Relation { schema: self.schema.clone(), rows }
    }

    /// Set-semantics copy: duplicates removed, rows sorted.
    pub fn distinct(&self) -> Relation {
        let set: BTreeSet<&Tuple> = self.rows.iter().collect();
        Relation {
            schema: self.schema.clone(),
            rows: set.into_iter().cloned().collect(),
        }
    }

    /// The column at attribute position `idx` as a vector.
    pub fn column(&self, idx: usize) -> Vec<&Value> {
        self.rows.iter().map(|r| &r[idx]).collect()
    }

    /// Sample up to `n` distinct values of the named attribute — the
    /// "sets of data instances" the corpus keeps composite statistics on
    /// (§4.2.2).
    pub fn sample_values(&self, attr: &str, n: usize) -> Vec<Value> {
        let Some(idx) = self.schema.position(attr) else {
            return Vec::new();
        };
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            if seen.insert(row[idx].clone()) {
                out.push(row[idx].clone());
                if out.len() >= n {
                    break;
                }
            }
        }
        out
    }
}

impl fmt::Display for Relation {
    /// Prints an ASCII table; used by examples and the `report` binary.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<&str> = self.schema.attr_names().collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        writeln!(f, "{} ({} rows)", self.schema.name, self.rows.len())?;
        line(f, &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())?;
        for row in &rendered {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;

    fn rel() -> Relation {
        let mut r = Relation::new(RelSchema::text("course", &["title", "dept"]));
        r.insert(vec![Value::str("Databases"), Value::str("CS")]);
        r.insert(vec![Value::str("Ancient Greece"), Value::str("History")]);
        r.insert(vec![Value::str("Databases"), Value::str("CS")]);
        r
    }

    #[test]
    fn bag_semantics_preserve_duplicates() {
        let r = rel();
        assert_eq!(r.len(), 3);
        assert_eq!(r.distinct().len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = rel();
        r.insert(vec![Value::str("only one")]);
    }

    #[test]
    fn delete_removes_all_occurrences() {
        let mut r = rel();
        let n = r.delete(&vec![Value::str("Databases"), Value::str("CS")]);
        assert_eq!(n, 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn sample_values_dedups_in_order() {
        let r = rel();
        let vals = r.sample_values("title", 10);
        assert_eq!(vals, vec![Value::str("Databases"), Value::str("Ancient Greece")]);
        assert_eq!(r.sample_values("title", 1).len(), 1);
        assert!(r.sample_values("nonexistent", 5).is_empty());
    }

    #[test]
    fn display_renders_table() {
        let s = rel().to_string();
        assert!(s.contains("| title"));
        assert!(s.contains("Ancient Greece"));
        assert!(s.starts_with("course (3 rows)"));
    }
}
