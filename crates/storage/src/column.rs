//! Typed column vectors, dictionary-encoded strings, and selection
//! bitmaps — the columnar storage layer under the vectorized evaluator
//! (`revere_query::vec`).
//!
//! A [`ColumnarBatch`] is a [`Relation`] pivoted into one [`ColumnVec`]
//! per attribute. Columns are *typed when the data allows it*: an
//! all-integer column becomes a dense `Vec<i64>`, an all-string column is
//! dictionary-encoded (first-seen-order dictionary + `u32` codes), and
//! everything else (nulls, bools, floats, mixed types) falls back to a
//! plain `Vec<Value>`. The conversion is exact: `get` reconstructs the
//! original [`Value`] byte for byte, so the batch layer can sit under the
//! evaluator without changing any answer.
//!
//! **Correctness rule for typed fast paths.** [`Value`] equality is
//! *numeric* across `Int` and `Float` (`Value::Int(2) == Value::Float(2.0)`),
//! and `Value`'s `Hash` agrees with it. Typed code paths (integer
//! compares, dictionary-code compares) are therefore only sound when
//! *both* operands are the same concrete variant; every cross-variant
//! comparison in this module routes through `Value` semantics. The
//! differential gate (`tests/differential_vec.rs`) holds the vectorized
//! engine to the row engine on exactly these cases.
//!
//! A [`SelBitmap`] is one bit per row of a batch, with the small algebra
//! (`and`/`or`/`not`, `rank`/`select`) filters and scans compose over.

use crate::relation::{Relation, Tuple};
use crate::schema::RelSchema;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A selection bitmap: one bit per row, set = selected. Bits beyond
/// `len` are kept zero so whole-word operations (`and`, `or`, `not`,
/// `count_ones`) never see ghost rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelBitmap {
    words: Vec<u64>,
    len: usize,
}

impl SelBitmap {
    /// An all-zeros bitmap over `len` rows.
    pub fn none(len: usize) -> SelBitmap {
        SelBitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// An all-ones bitmap over `len` rows.
    pub fn all(len: usize) -> SelBitmap {
        let mut b = SelBitmap { words: vec![u64::MAX; len.div_ceil(64)], len };
        b.mask_tail();
        b
    }

    /// A bitmap with exactly the given row indices set.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn from_indices(len: usize, indices: &[u32]) -> SelBitmap {
        let mut b = SelBitmap::none(len);
        for &i in indices {
            b.set(i as usize);
        }
        b
    }

    /// Number of rows the bitmap covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero every bit at or past `len`.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Set bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Bitwise intersection.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and(&self, other: &SelBitmap) -> SelBitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        SelBitmap {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
            len: self.len,
        }
    }

    /// Bitwise union.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn or(&self, other: &SelBitmap) -> SelBitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        SelBitmap {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a | b).collect(),
            len: self.len,
        }
    }

    /// Bitwise complement (over the `len` live rows only).
    pub fn not(&self) -> SelBitmap {
        let mut b =
            SelBitmap { words: self.words.iter().map(|w| !w).collect(), len: self.len };
        b.mask_tail();
        b
    }

    /// Number of selected rows.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of selected rows strictly before `i` (ones in `[0, i)`).
    ///
    /// # Panics
    /// Panics if `i > len`.
    pub fn rank(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank {i} out of range {}", self.len);
        let mut ones = self.words[..i / 64].iter().map(|w| w.count_ones() as usize).sum();
        if i % 64 != 0 {
            ones += (self.words[i / 64] & ((1u64 << (i % 64)) - 1)).count_ones() as usize;
        }
        ones
    }

    /// Row index of the `k`-th selected row (0-based), or `None` when
    /// fewer than `k + 1` rows are selected. Inverse of [`SelBitmap::rank`]:
    /// `select(rank(i)) == Some(i)` for every selected `i`.
    pub fn select(&self, k: usize) -> Option<usize> {
        let mut remaining = k;
        for (wi, &w) in self.words.iter().enumerate() {
            let ones = w.count_ones() as usize;
            if remaining < ones {
                let mut w = w;
                for _ in 0..remaining {
                    w &= w - 1; // clear lowest set bit
                }
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
            remaining -= ones;
        }
        None
    }

    /// The selected row indices, ascending.
    pub fn ones(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out.push((wi * 64 + w.trailing_zeros() as usize) as u32);
                w &= w - 1;
            }
        }
        out
    }
}

/// One column of a batch, stored as the tightest representation the data
/// admits. See the module docs for the cross-type correctness rule.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVec {
    /// Every cell is `Value::Int`.
    Int(Vec<i64>),
    /// Every cell is `Value::Str`, dictionary-encoded. The dictionary is
    /// deduplicated in first-seen order, so within one dictionary code
    /// equality is string equality; across dictionaries codes must be
    /// translated (see `Arc` sharing in [`ColumnVec::gather`]).
    Str {
        /// The distinct strings, in first-seen order.
        dict: Arc<Vec<String>>,
        /// Per-row index into `dict`.
        codes: Vec<u32>,
    },
    /// Anything else: nulls, bools, floats, or mixed types.
    Any(Vec<Value>),
}

impl ColumnVec {
    /// Build a column from a slice of values, picking the tightest
    /// representation ([`ColumnVec::Int`] if all-int, dictionary-encoded
    /// [`ColumnVec::Str`] if all-string, else [`ColumnVec::Any`]).
    pub fn from_values(vals: &[Value]) -> ColumnVec {
        if !vals.is_empty() && vals.iter().all(|v| matches!(v, Value::Int(_))) {
            return ColumnVec::Int(
                vals.iter().map(|v| v.as_int().expect("all-int column")).collect(),
            );
        }
        if !vals.is_empty() && vals.iter().all(|v| matches!(v, Value::Str(_))) {
            let mut dict: Vec<String> = Vec::new();
            let mut positions: HashMap<String, u32> = HashMap::new();
            let mut codes = Vec::with_capacity(vals.len());
            for v in vals {
                let s = v.as_str().expect("all-str column");
                match positions.get(s) {
                    Some(&c) => codes.push(c),
                    None => {
                        let c = dict.len() as u32;
                        dict.push(s.to_string());
                        positions.insert(s.to_string(), c);
                        codes.push(c);
                    }
                }
            }
            return ColumnVec::Str { dict: Arc::new(dict), codes };
        }
        ColumnVec::Any(vals.to_vec())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int(v) => v.len(),
            ColumnVec::Str { codes, .. } => codes.len(),
            ColumnVec::Any(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cell at row `i`, reconstructed as a [`Value`] (exact
    /// round-trip of what the column was built from).
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int(v) => Value::Int(v[i]),
            ColumnVec::Str { dict, codes } => Value::Str(dict[codes[i] as usize].clone()),
            ColumnVec::Any(v) => v[i].clone(),
        }
    }

    /// The whole column back as values (exact round-trip).
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Append one value, promoting the representation when the new value
    /// does not fit the current one (`Int` + a string ⇒ `Any`, etc.).
    /// Bulk loads should prefer [`ColumnVec::from_values`], which picks
    /// the representation once.
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (ColumnVec::Int(ints), Value::Int(i)) => ints.push(i),
            (ColumnVec::Str { dict, codes }, Value::Str(s)) => {
                let code = match dict.iter().position(|d| *d == s) {
                    Some(p) => p as u32,
                    None => {
                        let d = Arc::make_mut(dict);
                        d.push(s);
                        (d.len() - 1) as u32
                    }
                };
                codes.push(code);
            }
            (_, v) => {
                let mut vals = self.to_values();
                vals.push(v);
                // An empty column re-detects its representation from the
                // first pushed value; a mismatched push demotes to Any.
                *self = if self.is_empty() {
                    ColumnVec::from_values(&vals)
                } else {
                    ColumnVec::Any(vals)
                };
            }
        }
    }

    /// The dense integer slice, when this is an `Int` column.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            ColumnVec::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The dictionary and code slice, when this is a `Str` column.
    pub fn as_dict(&self) -> Option<(&Arc<Vec<String>>, &[u32])> {
        match self {
            ColumnVec::Str { dict, codes } => Some((dict, codes)),
            _ => None,
        }
    }

    /// Rows equal to a constant, under [`Value`] equality semantics
    /// (numeric across `Int`/`Float`; see module docs).
    pub fn eq_const(&self, c: &Value) -> SelBitmap {
        let mut sel = SelBitmap::none(self.len());
        match self {
            ColumnVec::Int(v) => {
                // An Int column can only match Int constants or Float
                // constants that are exactly an integer.
                let target = match c {
                    Value::Int(i) => Some(*i),
                    Value::Float(f) if *f == f.trunc() && (*f as i64) as f64 == *f => {
                        Some(*f as i64)
                    }
                    _ => None,
                };
                if let Some(t) = target {
                    for (i, x) in v.iter().enumerate() {
                        if *x == t {
                            sel.set(i);
                        }
                    }
                }
            }
            ColumnVec::Str { dict, codes } => {
                if let Some(target) =
                    c.as_str().and_then(|s| dict.iter().position(|d| d == s))
                {
                    let target = target as u32;
                    for (i, code) in codes.iter().enumerate() {
                        if *code == target {
                            sel.set(i);
                        }
                    }
                }
            }
            ColumnVec::Any(v) => {
                for (i, x) in v.iter().enumerate() {
                    if x == c {
                        sel.set(i);
                    }
                }
            }
        }
        sel
    }

    /// Rows where this column equals `other` at the same row (both
    /// columns must be the same length) — the within-atom repeated-
    /// variable filter of the vectorized engine.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn eq_elementwise(&self, other: &ColumnVec) -> SelBitmap {
        assert_eq!(self.len(), other.len(), "column length mismatch");
        let mut sel = SelBitmap::none(self.len());
        match (self, other) {
            (ColumnVec::Int(a), ColumnVec::Int(b)) => {
                for i in 0..a.len() {
                    if a[i] == b[i] {
                        sel.set(i);
                    }
                }
            }
            (
                ColumnVec::Str { dict: da, codes: ca },
                ColumnVec::Str { dict: db, codes: cb },
            ) => {
                if Arc::ptr_eq(da, db) {
                    for i in 0..ca.len() {
                        if ca[i] == cb[i] {
                            sel.set(i);
                        }
                    }
                } else {
                    // Translate the other dictionary's codes into this
                    // one once, then compare codes.
                    let trans: Vec<Option<u32>> = db
                        .iter()
                        .map(|s| da.iter().position(|d| d == s).map(|p| p as u32))
                        .collect();
                    for i in 0..ca.len() {
                        if trans[cb[i] as usize] == Some(ca[i]) {
                            sel.set(i);
                        }
                    }
                }
            }
            _ => {
                for i in 0..self.len() {
                    if self.eq_at(i, other, i) {
                        sel.set(i);
                    }
                }
            }
        }
        sel
    }

    /// Does `self[i]` equal `other[j]` under [`Value`] semantics? No
    /// allocation on any variant pair.
    pub fn eq_at(&self, i: usize, other: &ColumnVec, j: usize) -> bool {
        match (self, other) {
            (ColumnVec::Int(a), ColumnVec::Int(b)) => a[i] == b[j],
            (
                ColumnVec::Str { dict: da, codes: ca },
                ColumnVec::Str { dict: db, codes: cb },
            ) => {
                if Arc::ptr_eq(da, db) {
                    ca[i] == cb[j]
                } else {
                    da[ca[i] as usize] == db[cb[j] as usize]
                }
            }
            (ColumnVec::Any(a), ColumnVec::Any(b)) => a[i] == b[j],
            (ColumnVec::Int(a), ColumnVec::Any(b)) => Value::Int(a[i]) == b[j],
            (ColumnVec::Any(a), ColumnVec::Int(b)) => a[i] == Value::Int(b[j]),
            (ColumnVec::Str { dict, codes }, ColumnVec::Any(b)) => {
                b[j].as_str() == Some(dict[codes[i] as usize].as_str())
            }
            (ColumnVec::Any(a), ColumnVec::Str { dict, codes }) => {
                a[i].as_str() == Some(dict[codes[j] as usize].as_str())
            }
            // Int vs Str never compare equal (distinct type ranks).
            (ColumnVec::Int(_), ColumnVec::Str { .. })
            | (ColumnVec::Str { .. }, ColumnVec::Int(_)) => false,
        }
    }

    /// The rows at `idx`, in `idx` order, as a new column. Preserves the
    /// representation; `Str` gathers share the dictionary `Arc`, so codes
    /// stay comparable across a gather without translation.
    pub fn gather(&self, idx: &[u32]) -> ColumnVec {
        match self {
            ColumnVec::Int(v) => {
                ColumnVec::Int(idx.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnVec::Str { dict, codes } => ColumnVec::Str {
                dict: Arc::clone(dict),
                codes: idx.iter().map(|&i| codes[i as usize]).collect(),
            },
            ColumnVec::Any(v) => {
                ColumnVec::Any(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    /// The selected rows, in row order, as a new column. Equivalent to
    /// `gather(&sel.ones())`.
    ///
    /// # Panics
    /// Panics if the bitmap length differs from the column length.
    pub fn filter(&self, sel: &SelBitmap) -> ColumnVec {
        assert_eq!(self.len(), sel.len(), "bitmap/column length mismatch");
        self.gather(&sel.ones())
    }
}

/// A [`Relation`] pivoted into columns: the unit the vectorized evaluator
/// scans, filters, and joins.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBatch {
    columns: Vec<ColumnVec>,
    rows: usize,
}

impl ColumnarBatch {
    /// An empty batch of the given arity (each column starts untyped and
    /// adopts a representation from the first appended row).
    pub fn empty(arity: usize) -> ColumnarBatch {
        ColumnarBatch { columns: (0..arity).map(|_| ColumnVec::Any(Vec::new())).collect(), rows: 0 }
    }

    /// Pivot a relation into columns (the batch append path: one pass
    /// per column, typed representations chosen per column).
    pub fn from_relation(rel: &Relation) -> ColumnarBatch {
        let arity = rel.schema.arity();
        let columns = (0..arity)
            .map(|j| {
                let vals: Vec<Value> = rel.iter().map(|r| r[j].clone()).collect();
                ColumnVec::from_values(&vals)
            })
            .collect();
        ColumnarBatch { columns, rows: rel.len() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The columns.
    pub fn columns(&self) -> &[ColumnVec] {
        &self.columns
    }

    /// The column at position `i`.
    pub fn column(&self, i: usize) -> &ColumnVec {
        &self.columns[i]
    }

    /// Append one row, promoting column representations as needed.
    ///
    /// # Panics
    /// Panics if the row's arity differs from the batch's.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v.clone());
        }
        self.rows += 1;
    }

    /// Row `i` back as a tuple (exact round-trip).
    pub fn row(&self, i: usize) -> Tuple {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// The whole batch back as a relation under `schema` (exact
    /// round-trip of [`ColumnarBatch::from_relation`]).
    ///
    /// # Panics
    /// Panics if the schema arity differs from the batch's.
    pub fn to_relation(&self, schema: RelSchema) -> Relation {
        assert_eq!(schema.arity(), self.columns.len(), "schema arity mismatch");
        Relation::with_rows(schema, (0..self.rows).map(|i| self.row(i)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_algebra_basics() {
        let mut a = SelBitmap::none(70);
        for i in [0, 3, 63, 64, 69] {
            a.set(i);
        }
        assert_eq!(a.count_ones(), 5);
        assert_eq!(a.ones(), vec![0, 3, 63, 64, 69]);
        assert!(a.get(64) && !a.get(65));
        let b = SelBitmap::from_indices(70, &[3, 65]);
        assert_eq!(a.and(&b).ones(), vec![3]);
        assert_eq!(a.or(&b).count_ones(), 6);
        assert_eq!(a.not().count_ones(), 65);
        assert_eq!(a.not().not(), a);
        assert_eq!(SelBitmap::all(70).count_ones(), 70);
    }

    #[test]
    fn bitmap_rank_select_are_inverse() {
        let bits = SelBitmap::from_indices(130, &[0, 1, 64, 100, 129]);
        for (k, &i) in [0u32, 1, 64, 100, 129].iter().enumerate() {
            assert_eq!(bits.select(k), Some(i as usize));
            assert_eq!(bits.rank(i as usize), k);
        }
        assert_eq!(bits.select(5), None);
        assert_eq!(bits.rank(130), 5);
    }

    #[test]
    fn int_column_round_trips() {
        let vals = vec![Value::Int(3), Value::Int(-1), Value::Int(3)];
        let col = ColumnVec::from_values(&vals);
        assert!(matches!(col, ColumnVec::Int(_)));
        assert_eq!(col.to_values(), vals);
    }

    #[test]
    fn str_column_dictionary_encodes() {
        let vals: Vec<Value> = ["a", "b", "a", "a"].iter().map(|s| Value::str(*s)).collect();
        let col = ColumnVec::from_values(&vals);
        let (dict, codes) = col.as_dict().expect("str column");
        assert_eq!(dict.as_slice(), &["a".to_string(), "b".to_string()]);
        assert_eq!(codes, &[0, 1, 0, 0]);
        assert_eq!(col.to_values(), vals);
    }

    #[test]
    fn mixed_column_falls_back_to_any() {
        let vals = vec![Value::Int(1), Value::Null, Value::Float(2.5), Value::Bool(true)];
        let col = ColumnVec::from_values(&vals);
        assert!(matches!(col, ColumnVec::Any(_)));
        assert_eq!(col.to_values(), vals);
    }

    #[test]
    fn push_promotes_representation() {
        let mut col = ColumnVec::from_values(&[Value::Int(1), Value::Int(2)]);
        col.push(Value::str("x"));
        assert!(matches!(col, ColumnVec::Any(_)));
        assert_eq!(col.to_values(), vec![Value::Int(1), Value::Int(2), Value::str("x")]);
        let mut strs = ColumnVec::from_values(&[Value::str("a")]);
        strs.push(Value::str("b"));
        strs.push(Value::str("a"));
        assert_eq!(strs.as_dict().unwrap().1, &[0, 1, 0]);
    }

    #[test]
    fn eq_const_matches_value_semantics() {
        let ints = ColumnVec::from_values(&[Value::Int(2), Value::Int(3)]);
        // Cross-type numeric equality: Float(2.0) selects Int(2).
        assert_eq!(ints.eq_const(&Value::Float(2.0)).ones(), vec![0]);
        assert_eq!(ints.eq_const(&Value::Float(2.5)).count_ones(), 0);
        assert_eq!(ints.eq_const(&Value::str("2")).count_ones(), 0);
        let strs = ColumnVec::from_values(&[Value::str("a"), Value::str("b")]);
        assert_eq!(strs.eq_const(&Value::str("b")).ones(), vec![1]);
        assert_eq!(strs.eq_const(&Value::str("zzz")).count_ones(), 0);
        let any = ColumnVec::from_values(&[Value::Float(2.0), Value::Null]);
        assert_eq!(any.eq_const(&Value::Int(2)).ones(), vec![0]);
    }

    #[test]
    fn eq_elementwise_crosses_dictionaries() {
        let a = ColumnVec::from_values(&[Value::str("x"), Value::str("y")]);
        let b = ColumnVec::from_values(&[Value::str("y"), Value::str("y")]);
        assert_eq!(a.eq_elementwise(&b).ones(), vec![1]);
        let ints = ColumnVec::from_values(&[Value::Int(2), Value::Int(7)]);
        let mixed = ColumnVec::from_values(&[Value::Float(2.0), Value::str("7")]);
        assert_eq!(ints.eq_elementwise(&mixed).ones(), vec![0]);
    }

    #[test]
    fn gather_preserves_dictionary() {
        let col = ColumnVec::from_values(&[Value::str("a"), Value::str("b"), Value::str("c")]);
        let g = col.gather(&[2, 0, 2]);
        let (d0, _) = col.as_dict().unwrap();
        let (d1, codes) = g.as_dict().unwrap();
        assert!(Arc::ptr_eq(d0, d1));
        assert_eq!(codes, &[2, 0, 2]);
        assert_eq!(g.to_values(), vec![Value::str("c"), Value::str("a"), Value::str("c")]);
    }

    #[test]
    fn batch_round_trips_relation() {
        let mut r = Relation::new(RelSchema::text("t", &["s", "n"]));
        r.insert(vec![Value::str("a"), Value::Int(1)]);
        r.insert(vec![Value::str("b"), Value::Null]);
        let batch = ColumnarBatch::from_relation(&r);
        assert_eq!(batch.rows(), 2);
        assert!(matches!(batch.column(0), ColumnVec::Str { .. }));
        assert!(matches!(batch.column(1), ColumnVec::Any(_)));
        assert_eq!(batch.to_relation(r.schema.clone()), r);
        let mut appended = ColumnarBatch::empty(2);
        for row in r.iter() {
            appended.push_row(row);
        }
        assert_eq!(appended.to_relation(r.schema.clone()), r);
    }
}
