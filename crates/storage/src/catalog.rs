//! Named collections of relations.
//!
//! A [`Catalog`] is the local database of one Piazza peer (its "stored
//! relations", §3.1) or of one MANGROVE installation. [`SharedCatalog`]
//! wraps it for concurrent access from the simulated peer network.
//!
//! # Lock-poisoning policy
//!
//! [`SharedCatalog`] uses `std::sync::RwLock` (this workspace builds with
//! zero external dependencies). Unlike the `parking_lot` lock it replaced,
//! the std lock poisons when a holder panics. We **recover** the guard via
//! [`std::sync::PoisonError::into_inner`] rather than propagating the
//! panic, deliberately matching the previous `parking_lot` semantics
//! (which never poisoned): a peer thread that panics mid-query must not
//! take the whole simulated network down with it — peers "can join or
//! leave at will" (§3.1), and the surviving peers keep answering. The data
//! stays structurally sound because every write path is a single
//! `BTreeMap`/`Vec` operation that upholds the catalog's invariants even
//! if a *caller's* closure panics partway through a multi-step update; a
//! torn multi-step update is then visible, which the simulation accepts
//! in exchange for availability.

use crate::column::ColumnarBatch;
use crate::relation::Relation;
use crate::schema::{DbSchema, RelSchema};
use crate::stats::{JoinStats, RelStats};
use crate::value::Value;
use crate::wal::{Journal, WalRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, RwLock};

/// A named collection of relations.
///
/// The catalog also owns the planner-facing metadata for its relations:
/// incremental [`RelStats`] per relation (see [`crate::stats`]) and a
/// *stats epoch*, a counter bumped on every mutation. Plan caches key on
/// the epoch, so a cached plan can never outlive the statistics it was
/// costed against.
///
/// # Durability
///
/// A catalog may carry an attached [`Journal`]
/// ([`Catalog::attach_journal`]); every mutation is then journaled as a
/// [`WalRecord`] *before* it is applied, so the catalog can be recovered
/// after a crash via [`crate::wal::recover_catalog`] (snapshot + LSN
/// suffix replay). `Clone` deliberately does **not** carry the journal:
/// a clone is a value snapshot (staging catalogs, merged views), and
/// double-journaling through copies would corrupt the history.
#[derive(Debug, Default)]
pub struct Catalog {
    relations: BTreeMap<String, Relation>,
    /// Clean statistics per relation. A relation mutated through
    /// [`Catalog::get_mut`] loses its entry (the mutation is opaque) until
    /// the next [`Catalog::analyze`] or re-registration.
    stats: BTreeMap<String, RelStats>,
    /// The last clean stats of relations dirtied via [`Catalog::get_mut`],
    /// kept so [`Catalog::analyze`] can tell a real change from a no-op
    /// round-trip and leave the epoch alone for the latter.
    dirty: BTreeMap<String, RelStats>,
    /// Learned equijoin selectivities fed back from executed plans.
    join_stats: JoinStats,
    epoch: u64,
    /// Attached durable change log; `None` for plain in-memory catalogs.
    journal: Option<Journal>,
    /// Relations handed out via [`Catalog::get_mut`] while journaled: the
    /// mutation is opaque, so the whole relation is re-journaled as a
    /// [`WalRecord::Register`] at the next journaled operation. Until
    /// then the log is behind the in-memory state — the documented
    /// crash window of an unflushed write.
    rejournal: BTreeSet<String>,
    /// Columnar images built on demand by [`Catalog::batch`], keyed by the
    /// stats epoch they were pivoted at. Every mutation path bumps the
    /// epoch (including the conservative bump in [`Catalog::get_mut`],
    /// which fires before the `&mut Relation` is handed out — and borrow
    /// rules keep `batch` uncallable while that borrow lives), so a stale
    /// image is unreachable. Interior mutability keeps `batch` usable
    /// through the `&Catalog` the evaluator holds.
    batches: Mutex<BTreeMap<String, (u64, Arc<ColumnarBatch>)>>,
}

impl Clone for Catalog {
    /// Value snapshot: everything but the journal (see the type docs).
    fn clone(&self) -> Self {
        Catalog {
            relations: self.relations.clone(),
            stats: self.stats.clone(),
            dirty: self.dirty.clone(),
            join_stats: self.join_stats.clone(),
            epoch: self.epoch,
            journal: None,
            rejournal: BTreeSet::new(),
            // The cache is derived state; clones rebuild lazily.
            batches: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a durable journal: from now on every mutation is journaled
    /// before it is applied. The log receives no backfill — callers
    /// snapshot the current state first (see [`crate::wal::encode_catalog`])
    /// so recovery has a baseline.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// Detach the journal (mutations stop being journaled). Used to
    /// suppress re-journaling while *replaying* history onto a catalog and
    /// while applying an updategram already captured as one atomic
    /// [`WalRecord::DeltaApplied`].
    pub fn detach_journal(&mut self) -> Option<Journal> {
        self.journal.take()
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Journal a record, first flushing any relations dirtied through
    /// [`Catalog::get_mut`] as whole-relation re-registrations (their
    /// mutations were opaque, so the full current state is the only
    /// faithful record).
    fn journal_record(&mut self, rec: WalRecord) {
        let Some(j) = self.journal.clone() else { return };
        for name in std::mem::take(&mut self.rejournal) {
            if let Some(r) = self.relations.get(&name) {
                j.append(&WalRecord::Register { relation: r.clone() });
            }
        }
        j.append(&rec);
    }

    /// Flush pending opaque-mutation re-registrations to the journal
    /// without adding a record — called before snapshotting, so the log
    /// and the image agree.
    pub fn flush_journal(&mut self) {
        let Some(j) = self.journal.clone() else { return };
        for name in std::mem::take(&mut self.rejournal) {
            if let Some(r) = self.relations.get(&name) {
                j.append(&WalRecord::Register { relation: r.clone() });
            }
        }
    }

    /// Apply one journaled record to this catalog (crash recovery). The
    /// journal is suspended for the duration: replay must not re-journal
    /// history. `DeltaSealed`/`DeltaAcked` records carry no catalog
    /// effect and are ignored (the propagation layer folds them).
    pub fn replay(&mut self, rec: &WalRecord) {
        let suspended = self.journal.take();
        match rec {
            WalRecord::Register { relation } => self.register(relation.clone()),
            WalRecord::Insert { relation, row } => {
                self.insert(relation, row.clone());
            }
            WalRecord::Delete { relation, row } => {
                self.delete(relation, row);
            }
            WalRecord::Analyze => {
                self.analyze();
            }
            WalRecord::JoinObserved { rel_a, col_a, rel_b, col_b, selectivity } => {
                self.note_join_overlap(
                    rel_a,
                    *col_a as usize,
                    rel_b,
                    *col_b as usize,
                    *selectivity,
                );
            }
            WalRecord::DeltaApplied { relation, insert, delete, .. } => {
                // Same order as updategram application: deletes, then
                // inserts.
                for row in delete {
                    self.delete(relation, row);
                }
                for row in insert {
                    self.insert(relation, row.clone());
                }
            }
            WalRecord::DeltaSealed { .. } | WalRecord::DeltaAcked { .. } => {}
        }
        self.journal = suspended;
    }

    /// Register (or replace) a relation under its schema name. Statistics
    /// are computed in the same pass that hands the relation over.
    pub fn register(&mut self, rel: Relation) {
        let name = rel.schema.name.clone();
        if self.journal.is_some() {
            // The explicit record supersedes any pending re-journal.
            self.rejournal.remove(&name);
            self.journal_record(WalRecord::Register { relation: rel.clone() });
        }
        self.stats.insert(name.clone(), RelStats::compute(&rel));
        self.dirty.remove(&name);
        self.relations.insert(name, rel);
        self.epoch += 1;
    }

    /// Create an empty relation under the given schema.
    pub fn create(&mut self, schema: RelSchema) {
        self.register(Relation::new(schema));
    }

    /// Borrow a relation.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// The columnar image of a relation (see [`ColumnarBatch`]), built on
    /// first use and cached until the stats epoch moves. The row→column
    /// pivot — dictionary-encoding every string cell in particular — costs
    /// about as much as scanning the relation, so the vectorized engine
    /// must not pay it per evaluation; with the cache, repeated queries
    /// against an unchanged catalog share one immutable image per
    /// relation.
    pub fn batch(&self, name: &str) -> Option<Arc<ColumnarBatch>> {
        let rel = self.relations.get(name)?;
        let mut cache = self.batches.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((epoch, batch)) = cache.get(name) {
            if *epoch == self.epoch {
                return Some(Arc::clone(batch));
            }
        }
        let batch = Arc::new(ColumnarBatch::from_relation(rel));
        cache.insert(name.to_string(), (self.epoch, Arc::clone(&batch)));
        Some(batch)
    }

    /// Mutably borrow a relation.
    ///
    /// The caller may mutate arbitrarily, so the relation's cached
    /// statistics are invalidated and the stats epoch bumped; call
    /// [`Catalog::analyze`] afterwards to rebuild them (the planner falls
    /// back to raw row counts in the meantime).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Relation> {
        if self.journal.is_some() && self.relations.contains_key(name) {
            // The caller's mutations are opaque to the journal; remember
            // to re-journal the whole relation at the next operation.
            self.rejournal.insert(name.to_string());
        }
        let r = self.relations.get_mut(name);
        if r.is_some() {
            if let Some(old) = self.stats.remove(name) {
                self.dirty.insert(name.to_string(), old);
            }
            self.epoch += 1;
        }
        r
    }

    /// Insert a row into a named relation. Returns `false` if the relation
    /// does not exist. Statistics follow incrementally — no rescan.
    pub fn insert(&mut self, rel: &str, row: Vec<Value>) -> bool {
        if !self.relations.contains_key(rel) {
            return false;
        }
        if self.journal.is_some() {
            self.journal_record(WalRecord::Insert { relation: rel.to_string(), row: row.clone() });
        }
        if let Some(s) = self.stats.get_mut(rel) {
            s.note_insert(&row);
        }
        self.relations.get_mut(rel).expect("checked above").insert(row);
        self.epoch += 1;
        true
    }

    /// Delete every copy of `row` from a named relation, returning how
    /// many rows were actually removed. Statistics are noted with that
    /// exact count (so a delete-of-absent cannot desync them), and the
    /// epoch only moves when something really changed.
    ///
    /// When journaled, the delete is logged *before* it is applied —
    /// even a delete that turns out to remove nothing (replaying a no-op
    /// delete is itself a no-op, so recovery stays faithful).
    pub fn delete(&mut self, rel: &str, row: &[Value]) -> usize {
        if !self.relations.contains_key(rel) {
            return 0;
        }
        if self.journal.is_some() {
            self.journal_record(WalRecord::Delete { relation: rel.to_string(), row: row.to_vec() });
        }
        let r = self.relations.get_mut(rel).expect("checked above");
        let removed = r.delete(row);
        if removed > 0 {
            if let Some(s) = self.stats.get_mut(rel) {
                s.note_delete_n(row, removed);
            }
            self.epoch += 1;
        }
        removed
    }

    /// Current statistics for a relation, if clean. `None` for unknown
    /// relations and for relations dirtied via [`Catalog::get_mut`].
    pub fn rel_stats(&self, name: &str) -> Option<&RelStats> {
        self.stats.get(name)
    }

    /// Recompute statistics for every relation that lacks a clean entry.
    /// Returns how many relations were (re)analyzed.
    ///
    /// The epoch moves only when some recomputed statistics actually
    /// differ from the last clean ones: a `get_mut` round-trip that left
    /// the data equivalent must not shift downstream cache epochs and
    /// flush every warm reformulation/plan cache for a no-op.
    pub fn analyze(&mut self) -> usize {
        if self.journal.is_some()
            && self.relations.keys().any(|n| !self.stats.contains_key(n))
        {
            // journal_record first flushes the dirtied relations as full
            // re-registrations, so the replayed Analyze finds them clean;
            // the record still marks where statistics were rebuilt.
            self.journal_record(WalRecord::Analyze);
        }
        let mut analyzed = 0;
        let mut changed = 0;
        for (name, rel) in &self.relations {
            if !self.stats.contains_key(name) {
                let fresh = RelStats::compute(rel);
                if self.dirty.remove(name).as_ref() != Some(&fresh) {
                    changed += 1;
                }
                self.stats.insert(name.clone(), fresh);
                analyzed += 1;
            }
        }
        if changed > 0 {
            self.epoch += 1;
        }
        analyzed
    }

    /// The learned join-overlap store (see [`crate::stats::JoinStats`]).
    pub fn join_stats(&self) -> &JoinStats {
        &self.join_stats
    }

    /// Record an observed equijoin selectivity fed back from an executed
    /// plan. The epoch is bumped **only** when the stored estimate
    /// materially changed — re-observing a well-calibrated join must not
    /// flush warm plan caches keyed on the epoch. Returns whether the
    /// store changed.
    pub fn note_join_overlap(
        &mut self,
        rel_a: &str,
        col_a: usize,
        rel_b: &str,
        col_b: usize,
        sel: f64,
    ) -> bool {
        if self.journal.is_some() {
            // Every observation is journaled (not just material changes):
            // replay re-runs each `note`, reproducing both the stored
            // selectivity and the observation count exactly.
            self.journal_record(WalRecord::JoinObserved {
                rel_a: rel_a.to_string(),
                col_a: col_a as u32,
                rel_b: rel_b.to_string(),
                col_b: col_b as u32,
                selectivity: sel,
            });
        }
        let changed = self.join_stats.note(rel_a, col_a, rel_b, col_b, sel);
        if changed {
            self.epoch += 1;
        }
        changed
    }

    /// Import learned join stats wholesale (e.g. into a per-query staging
    /// catalog or a merged snapshot). Does **not** bump the epoch: the
    /// observations were already accounted for where they were recorded.
    /// Not journaled — this is a staging/merge API; durable catalogs learn
    /// through [`Catalog::note_join_overlap`].
    pub fn absorb_join_stats(&mut self, other: &JoinStats) {
        self.join_stats.absorb(other);
    }

    /// Drop every learned join observation mentioning a relation for which
    /// `drop_rel` returns true (either side of the pair). Bumps the epoch
    /// when anything was removed, so caches costed against the departed
    /// statistics are invalidated. Returns how many entries were removed.
    pub fn purge_join_stats(&mut self, drop_rel: impl Fn(&str) -> bool) -> usize {
        let removed = self.join_stats.purge_where(drop_rel);
        if removed > 0 {
            self.epoch += 1;
        }
        removed
    }

    /// The stats epoch: strictly increases with every catalog mutation
    /// (register/create/insert/`get_mut`/analyze). Cache keys include it.
    pub fn stats_epoch(&self) -> u64 {
        self.epoch
    }

    /// Relation names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when no relation is registered.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The database schema implied by the registered relations.
    pub fn schema(&self, name: impl Into<String>) -> DbSchema {
        DbSchema {
            name: name.into(),
            relations: self.relations.values().map(|r| r.schema.clone()).collect(),
        }
    }

    /// Total tuple count across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

/// A thread-safe, shareable catalog handle.
#[derive(Debug, Default, Clone)]
pub struct SharedCatalog {
    inner: Arc<RwLock<Catalog>>,
}

impl SharedCatalog {
    /// Wrap a catalog for sharing.
    pub fn new(catalog: Catalog) -> Self {
        SharedCatalog { inner: Arc::new(RwLock::new(catalog)) }
    }

    /// Run a closure with read access (recovers from poisoning; see the
    /// module docs for the policy).
    pub fn read<T>(&self, f: impl FnOnce(&Catalog) -> T) -> T {
        f(&self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Run a closure with write access (recovers from poisoning; see the
    /// module docs for the policy).
    pub fn write<T>(&self, f: impl FnOnce(&mut Catalog) -> T) -> T {
        f(&mut self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Clone out a relation by name.
    pub fn snapshot(&self, rel: &str) -> Option<Relation> {
        self.read(|c| c.get(rel).cloned())
    }

    /// The wrapped catalog's stats epoch (see [`Catalog::stats_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.read(Catalog::stats_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;

    #[test]
    fn register_and_insert() {
        let mut c = Catalog::new();
        c.create(RelSchema::text("course", &["title"]));
        assert!(c.insert("course", vec![Value::str("db")]));
        assert!(!c.insert("nope", vec![Value::str("x")]));
        assert_eq!(c.get("course").unwrap().len(), 1);
        assert_eq!(c.total_rows(), 1);
    }

    #[test]
    fn stats_follow_inserts_incrementally() {
        let mut c = Catalog::new();
        c.create(RelSchema::text("t", &["v"]));
        let e0 = c.stats_epoch();
        c.insert("t", vec![Value::str("a")]);
        c.insert("t", vec![Value::str("a")]);
        c.insert("t", vec![Value::str("b")]);
        let s = c.rel_stats("t").expect("clean stats");
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct(0), 2);
        assert_eq!(s.columns[0].count_of(&Value::str("a")), 2);
        assert!(c.stats_epoch() > e0, "mutations bump the epoch");
        assert!(c.rel_stats("missing").is_none());
    }

    #[test]
    fn get_mut_dirties_stats_and_analyze_rebuilds() {
        let mut c = Catalog::new();
        c.create(RelSchema::text("t", &["v"]));
        c.insert("t", vec![Value::str("a")]);
        let before = c.stats_epoch();
        c.get_mut("t").unwrap().insert(vec![Value::str("b")]);
        assert!(c.rel_stats("t").is_none(), "opaque mutation dirties stats");
        assert!(c.stats_epoch() > before);
        assert_eq!(c.analyze(), 1);
        let s = c.rel_stats("t").unwrap();
        assert_eq!(s.rows, 2);
        assert_eq!(s.distinct(0), 2);
        // A second analyze is a no-op and leaves the epoch alone.
        let stable = c.stats_epoch();
        assert_eq!(c.analyze(), 0);
        assert_eq!(c.stats_epoch(), stable);
    }

    #[test]
    fn analyze_after_a_no_op_get_mut_leaves_the_epoch_alone() {
        let mut c = Catalog::new();
        c.create(RelSchema::text("t", &["v"]));
        c.insert("t", vec![Value::str("a")]);
        // Borrow mutably but change nothing observable.
        assert_eq!(c.get_mut("t").unwrap().len(), 1);
        let after_dirty = c.stats_epoch();
        assert_eq!(c.analyze(), 1, "the dirtied relation is recomputed");
        assert_eq!(c.stats_epoch(), after_dirty, "identical stats must not bump the epoch");
        assert_eq!(c.rel_stats("t").unwrap().rows, 1);
        // A get_mut that really changes data still bumps on analyze.
        c.get_mut("t").unwrap().insert(vec![Value::str("b")]);
        let dirtied = c.stats_epoch();
        assert_eq!(c.analyze(), 1);
        assert!(c.stats_epoch() > dirtied, "changed stats bump the epoch");
    }

    #[test]
    fn delete_notes_only_rows_actually_removed() {
        let mut c = Catalog::new();
        c.create(RelSchema::text("t", &["v"]));
        c.insert("t", vec![Value::str("a")]);
        c.insert("t", vec![Value::str("a")]);
        c.insert("t", vec![Value::str("b")]);
        let e = c.stats_epoch();
        // Deleting an absent row changes nothing — not even the epoch.
        assert_eq!(c.delete("t", &[Value::str("ghost")]), 0);
        assert_eq!(c.stats_epoch(), e);
        assert_eq!(c.rel_stats("t").unwrap().rows, 3);
        // Deleting a duplicated row removes (and notes) both copies.
        assert_eq!(c.delete("t", &[Value::str("a")]), 2);
        assert!(c.stats_epoch() > e);
        let s = c.rel_stats("t").unwrap();
        assert_eq!(s.rows, 1);
        assert_eq!(s.distinct(0), 1);
        assert_eq!(s, &crate::stats::RelStats::compute(c.get("t").unwrap()));
        assert_eq!(c.delete("missing", &[Value::str("x")]), 0);
    }

    #[test]
    fn join_overlap_feedback_bumps_the_epoch_only_on_material_change() {
        let mut c = Catalog::new();
        let e0 = c.stats_epoch();
        assert!(c.note_join_overlap("A.r", 0, "B.r", 1, 0.25));
        let e1 = c.stats_epoch();
        assert!(e1 > e0, "a new observation shifts the epoch");
        assert_eq!(c.join_stats().overlap("B.r", 1, "A.r", 0), Some(0.25));
        // Re-observing the same selectivity is a no-op for the epoch.
        assert!(!c.note_join_overlap("A.r", 0, "B.r", 1, 0.25));
        assert_eq!(c.stats_epoch(), e1);
        // Absorbing into a staging catalog never moves its epoch.
        let mut staging = Catalog::new();
        let se = staging.stats_epoch();
        staging.absorb_join_stats(c.join_stats());
        assert_eq!(staging.stats_epoch(), se);
        assert_eq!(staging.join_stats().overlap("A.r", 0, "B.r", 1), Some(0.25));
    }

    #[test]
    fn register_computes_stats_in_one_pass() {
        let mut c = Catalog::new();
        let mut r = Relation::new(RelSchema::text("t", &["v"]));
        r.insert(vec![Value::str("x")]);
        r.insert(vec![Value::str("x")]);
        c.register(r);
        assert_eq!(c.rel_stats("t").unwrap().columns[0].count_of(&Value::str("x")), 2);
        // SharedCatalog exposes the epoch for cache keys.
        let shared = SharedCatalog::new(c);
        let e = shared.epoch();
        shared.write(|c| c.insert("t", vec![Value::str("y")]));
        assert!(shared.epoch() > e);
    }

    #[test]
    fn journaled_mutations_replay_to_the_same_catalog() {
        use crate::wal::{encode_catalog, recover_catalog, Journal};
        let mut c = Catalog::new();
        let journal = Journal::new();
        c.attach_journal(journal.clone());
        c.create(RelSchema::text("t", &["v"]));
        c.insert("t", vec![Value::str("a")]);
        c.insert("t", vec![Value::str("b")]);
        c.delete("t", &[Value::str("a")]);
        c.note_join_overlap("A.r", 0, "B.s", 1, 0.5);
        c.note_join_overlap("A.r", 0, "B.s", 1, 0.5); // re-observation journaled too
        let (rec, report) = recover_catalog(None, &journal.bytes()).expect("recovers");
        assert!(!report.snapshot_used);
        assert_eq!(encode_catalog(&rec, 0), encode_catalog(&c, 0));
        assert_eq!(
            rec.join_stats().iter().next().unwrap().1.observations,
            2,
            "observation counts replay exactly"
        );
        // Statistics are recomputed on replay, not carried in the log.
        assert_eq!(rec.rel_stats("t").unwrap(), c.rel_stats("t").unwrap());
    }

    #[test]
    fn get_mut_mutations_are_rejournaled_at_the_next_operation() {
        use crate::wal::{recover_catalog, Journal, WalRecord};
        let mut c = Catalog::new();
        let journal = Journal::new();
        c.attach_journal(journal.clone());
        c.create(RelSchema::text("t", &["v"]));
        // Opaque mutation: invisible to the journal until the next op.
        c.get_mut("t").unwrap().insert(vec![Value::str("hidden")]);
        let behind = recover_catalog(None, &journal.bytes()).unwrap().0;
        assert_eq!(behind.get("t").unwrap().len(), 0, "crash window: unflushed write");
        // The next journaled operation flushes the whole relation first.
        c.insert("t", vec![Value::str("visible")]);
        let caught_up = recover_catalog(None, &journal.bytes()).unwrap().0;
        assert_eq!(caught_up.get("t").unwrap().len(), 2);
        assert!(
            journal
                .records()
                .iter()
                .any(|(_, r)| matches!(r, WalRecord::Register { relation } if relation.len() == 1)),
            "the flush re-registered the relation with its opaque insert"
        );
        // flush_journal covers the snapshot path with no extra record.
        c.get_mut("t").unwrap().insert(vec![Value::str("third")]);
        c.flush_journal();
        let flushed = recover_catalog(None, &journal.bytes()).unwrap().0;
        assert_eq!(flushed.get("t").unwrap().len(), 3);
    }

    #[test]
    fn clones_do_not_carry_the_journal() {
        use crate::wal::Journal;
        let mut c = Catalog::new();
        let journal = Journal::new();
        c.attach_journal(journal.clone());
        c.create(RelSchema::text("t", &["v"]));
        let n = journal.record_count();
        let mut copy = c.clone();
        assert!(copy.journal().is_none());
        copy.insert("t", vec![Value::str("staged")]);
        assert_eq!(journal.record_count(), n, "staging mutations are not journaled");
        assert!(c.journal().is_some(), "the original keeps its journal");
    }

    #[test]
    fn purge_join_stats_drops_matching_entries_and_bumps_the_epoch() {
        let mut c = Catalog::new();
        c.note_join_overlap("Gone.r", 0, "Stays.s", 1, 0.25);
        c.note_join_overlap("Stays.s", 0, "Also.t", 1, 0.5);
        let e = c.stats_epoch();
        assert_eq!(c.purge_join_stats(|rel| rel.starts_with("Gone.")), 1);
        assert!(c.stats_epoch() > e);
        assert_eq!(c.join_stats().len(), 1);
        assert!(c.join_stats().overlap("Gone.r", 0, "Stays.s", 1).is_none());
        // Purging nothing leaves the epoch alone.
        let e2 = c.stats_epoch();
        assert_eq!(c.purge_join_stats(|rel| rel.starts_with("Absent.")), 0);
        assert_eq!(c.stats_epoch(), e2);
    }

    #[test]
    fn batch_cache_tracks_the_epoch() {
        let mut c = Catalog::new();
        c.create(RelSchema::text("t", &["v"]));
        c.insert("t", vec![Value::str("a")]);
        assert!(c.batch("missing").is_none());
        let b1 = c.batch("t").expect("batch builds");
        assert_eq!(b1.to_relation(c.get("t").unwrap().schema.clone()), *c.get("t").unwrap());
        // Unchanged catalog: the very same image is shared.
        let b2 = c.batch("t").expect("batch cached");
        assert!(Arc::ptr_eq(&b1, &b2), "cache hit must share the image");
        // Any mutation path invalidates — insert, delete, get_mut.
        c.insert("t", vec![Value::str("b")]);
        let b3 = c.batch("t").expect("batch rebuilt");
        assert!(!Arc::ptr_eq(&b2, &b3), "stale image survived an insert");
        assert_eq!(b3.rows(), 2);
        c.get_mut("t").unwrap().insert(vec![Value::str("c")]);
        assert_eq!(c.batch("t").unwrap().rows(), 3, "stale image survived get_mut");
        c.delete("t", &[Value::str("a")]);
        assert_eq!(c.batch("t").unwrap().rows(), 2, "stale image survived a delete");
        // Clones start cold but converge to the same contents.
        let copy = c.clone();
        assert_eq!(copy.batch("t").unwrap(), c.batch("t").unwrap());
    }

    #[test]
    fn schema_reflects_contents() {
        let mut c = Catalog::new();
        c.create(RelSchema::text("a", &["x"]));
        c.create(RelSchema::text("b", &["y", "z"]));
        let s = c.schema("peer1");
        assert_eq!(s.relations.len(), 2);
        assert_eq!(s.element_count(), 5);
    }

    #[test]
    fn shared_catalog_concurrent_access() {
        let shared = SharedCatalog::new(Catalog::new());
        shared.write(|c| c.create(RelSchema::text("t", &["v"])));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = shared.clone();
                std::thread::spawn(move || {
                    s.write(|c| c.insert("t", vec![Value::Int(i)]));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.read(|c| c.get("t").unwrap().len()), 8);
        assert_eq!(shared.snapshot("t").unwrap().len(), 8);
        assert!(shared.snapshot("missing").is_none());
    }

    #[test]
    fn poisoned_lock_recovers() {
        // A peer thread panicking mid-write must not strand the catalog:
        // the module's documented policy is to recover the guard.
        let shared = SharedCatalog::new(Catalog::new());
        shared.write(|c| c.create(RelSchema::text("t", &["v"])));
        let clone = shared.clone();
        let _ = std::thread::spawn(move || {
            clone.write(|c| {
                c.insert("t", vec![Value::Int(1)]);
                panic!("writer dies while holding the lock");
            })
        })
        .join();
        // Both the completed single-step insert and future access survive.
        assert_eq!(shared.read(|c| c.get("t").unwrap().len()), 1);
        shared.write(|c| c.insert("t", vec![Value::Int(2)]));
        assert_eq!(shared.snapshot("t").unwrap().len(), 2);
    }

    #[test]
    fn writers_contending_with_a_panicking_writer_all_land() {
        // The chaos scenario: one peer thread dies mid-write while others
        // keep updating the same catalog. Every surviving writer's insert
        // must land, whether it acquired the lock before or after the
        // poisoning.
        let shared = SharedCatalog::new(Catalog::new());
        shared.write(|c| c.create(RelSchema::text("t", &["v"])));
        let mut handles = Vec::new();
        for i in 0..8 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                s.write(|c| {
                    c.insert("t", vec![Value::Int(i)]);
                    if i == 3 {
                        panic!("peer thread dies holding the write guard");
                    }
                });
            }));
        }
        let panicked = handles.into_iter().map(|h| h.join()).filter(Result::is_err).count();
        assert_eq!(panicked, 1, "exactly the one deliberate panic");
        assert_eq!(shared.read(|c| c.get("t").unwrap().len()), 8);
    }

    #[test]
    fn panicking_read_closure_does_not_block_writers() {
        // Reads recover from (and do not themselves prevent) progress: a
        // panic inside a read closure leaves the lock usable for both
        // subsequent readers and writers.
        let shared = SharedCatalog::new(Catalog::new());
        shared.write(|c| c.create(RelSchema::text("t", &["v"])));
        shared.write(|c| c.insert("t", vec![Value::Int(1)]));
        let clone = shared.clone();
        let joined = std::thread::spawn(move || {
            clone.read(|c| {
                assert_eq!(c.get("t").unwrap().len(), 1);
                panic!("reader dies while holding the lock");
            })
        })
        .join();
        assert!(joined.is_err(), "the reader really did panic");
        shared.write(|c| c.insert("t", vec![Value::Int(2)]));
        assert_eq!(shared.read(|c| c.get("t").unwrap().len()), 2);
        assert_eq!(shared.snapshot("t").unwrap().len(), 2);
    }
}
