//! Named collections of relations.
//!
//! A [`Catalog`] is the local database of one Piazza peer (its "stored
//! relations", §3.1) or of one MANGROVE installation. [`SharedCatalog`]
//! wraps it for concurrent access from the simulated peer network.
//!
//! # Lock-poisoning policy
//!
//! [`SharedCatalog`] uses `std::sync::RwLock` (this workspace builds with
//! zero external dependencies). Unlike the `parking_lot` lock it replaced,
//! the std lock poisons when a holder panics. We **recover** the guard via
//! [`std::sync::PoisonError::into_inner`] rather than propagating the
//! panic, deliberately matching the previous `parking_lot` semantics
//! (which never poisoned): a peer thread that panics mid-query must not
//! take the whole simulated network down with it — peers "can join or
//! leave at will" (§3.1), and the surviving peers keep answering. The data
//! stays structurally sound because every write path is a single
//! `BTreeMap`/`Vec` operation that upholds the catalog's invariants even
//! if a *caller's* closure panics partway through a multi-step update; a
//! torn multi-step update is then visible, which the simulation accepts
//! in exchange for availability.

use crate::relation::Relation;
use crate::schema::{DbSchema, RelSchema};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// A named collection of relations.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    relations: BTreeMap<String, Relation>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a relation under its schema name.
    pub fn register(&mut self, rel: Relation) {
        self.relations.insert(rel.schema.name.clone(), rel);
    }

    /// Create an empty relation under the given schema.
    pub fn create(&mut self, schema: RelSchema) {
        self.register(Relation::new(schema));
    }

    /// Borrow a relation.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutably borrow a relation.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Insert a row into a named relation. Returns `false` if the relation
    /// does not exist.
    pub fn insert(&mut self, rel: &str, row: Vec<Value>) -> bool {
        match self.relations.get_mut(rel) {
            Some(r) => {
                r.insert(row);
                true
            }
            None => false,
        }
    }

    /// Relation names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when no relation is registered.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The database schema implied by the registered relations.
    pub fn schema(&self, name: impl Into<String>) -> DbSchema {
        DbSchema {
            name: name.into(),
            relations: self.relations.values().map(|r| r.schema.clone()).collect(),
        }
    }

    /// Total tuple count across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

/// A thread-safe, shareable catalog handle.
#[derive(Debug, Default, Clone)]
pub struct SharedCatalog {
    inner: Arc<RwLock<Catalog>>,
}

impl SharedCatalog {
    /// Wrap a catalog for sharing.
    pub fn new(catalog: Catalog) -> Self {
        SharedCatalog { inner: Arc::new(RwLock::new(catalog)) }
    }

    /// Run a closure with read access (recovers from poisoning; see the
    /// module docs for the policy).
    pub fn read<T>(&self, f: impl FnOnce(&Catalog) -> T) -> T {
        f(&self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Run a closure with write access (recovers from poisoning; see the
    /// module docs for the policy).
    pub fn write<T>(&self, f: impl FnOnce(&mut Catalog) -> T) -> T {
        f(&mut self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Clone out a relation by name.
    pub fn snapshot(&self, rel: &str) -> Option<Relation> {
        self.read(|c| c.get(rel).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;

    #[test]
    fn register_and_insert() {
        let mut c = Catalog::new();
        c.create(RelSchema::text("course", &["title"]));
        assert!(c.insert("course", vec![Value::str("db")]));
        assert!(!c.insert("nope", vec![Value::str("x")]));
        assert_eq!(c.get("course").unwrap().len(), 1);
        assert_eq!(c.total_rows(), 1);
    }

    #[test]
    fn schema_reflects_contents() {
        let mut c = Catalog::new();
        c.create(RelSchema::text("a", &["x"]));
        c.create(RelSchema::text("b", &["y", "z"]));
        let s = c.schema("peer1");
        assert_eq!(s.relations.len(), 2);
        assert_eq!(s.element_count(), 5);
    }

    #[test]
    fn shared_catalog_concurrent_access() {
        let shared = SharedCatalog::new(Catalog::new());
        shared.write(|c| c.create(RelSchema::text("t", &["v"])));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = shared.clone();
                std::thread::spawn(move || {
                    s.write(|c| c.insert("t", vec![Value::Int(i)]));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.read(|c| c.get("t").unwrap().len()), 8);
        assert_eq!(shared.snapshot("t").unwrap().len(), 8);
        assert!(shared.snapshot("missing").is_none());
    }

    #[test]
    fn poisoned_lock_recovers() {
        // A peer thread panicking mid-write must not strand the catalog:
        // the module's documented policy is to recover the guard.
        let shared = SharedCatalog::new(Catalog::new());
        shared.write(|c| c.create(RelSchema::text("t", &["v"])));
        let clone = shared.clone();
        let _ = std::thread::spawn(move || {
            clone.write(|c| {
                c.insert("t", vec![Value::Int(1)]);
                panic!("writer dies while holding the lock");
            })
        })
        .join();
        // Both the completed single-step insert and future access survive.
        assert_eq!(shared.read(|c| c.get("t").unwrap().len()), 1);
        shared.write(|c| c.insert("t", vec![Value::Int(2)]));
        assert_eq!(shared.snapshot("t").unwrap().len(), 2);
    }

    #[test]
    fn writers_contending_with_a_panicking_writer_all_land() {
        // The chaos scenario: one peer thread dies mid-write while others
        // keep updating the same catalog. Every surviving writer's insert
        // must land, whether it acquired the lock before or after the
        // poisoning.
        let shared = SharedCatalog::new(Catalog::new());
        shared.write(|c| c.create(RelSchema::text("t", &["v"])));
        let mut handles = Vec::new();
        for i in 0..8 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                s.write(|c| {
                    c.insert("t", vec![Value::Int(i)]);
                    if i == 3 {
                        panic!("peer thread dies holding the write guard");
                    }
                });
            }));
        }
        let panicked = handles.into_iter().map(|h| h.join()).filter(Result::is_err).count();
        assert_eq!(panicked, 1, "exactly the one deliberate panic");
        assert_eq!(shared.read(|c| c.get("t").unwrap().len()), 8);
    }

    #[test]
    fn panicking_read_closure_does_not_block_writers() {
        // Reads recover from (and do not themselves prevent) progress: a
        // panic inside a read closure leaves the lock usable for both
        // subsequent readers and writers.
        let shared = SharedCatalog::new(Catalog::new());
        shared.write(|c| c.create(RelSchema::text("t", &["v"])));
        shared.write(|c| c.insert("t", vec![Value::Int(1)]));
        let clone = shared.clone();
        let joined = std::thread::spawn(move || {
            clone.read(|c| {
                assert_eq!(c.get("t").unwrap().len(), 1);
                panic!("reader dies while holding the lock");
            })
        })
        .join();
        assert!(joined.is_err(), "the reader really did panic");
        shared.write(|c| c.insert("t", vec![Value::Int(2)]));
        assert_eq!(shared.read(|c| c.get("t").unwrap().len()), 2);
        assert_eq!(shared.snapshot("t").unwrap().len(), 2);
    }
}
