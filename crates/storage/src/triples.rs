//! The provenance-carrying triple store MANGROVE publishes into.
//!
//! §2.2: "the annotations on web pages are stored in a repository for
//! querying and access by applications ... we currently store the data in a
//! relational database using a simple graph representation"; §2.3: "The
//! source URL of the data is stored in the database and can serve as an
//! important resource for cleaning up the data."
//!
//! A [`Triple`] is `(subject, predicate, object)` plus its provenance: the
//! source URL it was published from and the logical publish time. The store
//! maintains SP/PO/OS hash indexes so any single- or double-bound pattern is
//! answered without a scan, and supports *republish* semantics — publishing
//! a page replaces all triples previously published from that URL, which is
//! what makes MANGROVE's instant-gratification loop work.

use crate::relation::Relation;
use crate::schema::RelSchema;
use crate::value::Value;
use std::collections::HashMap;

/// One edge of the annotation graph, with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Triple {
    /// Subject: the entity the statement is about (e.g. a course URL).
    pub subject: String,
    /// Predicate: the schema tag (e.g. `course.title`).
    pub predicate: String,
    /// Object: the value.
    pub object: Value,
    /// Source URL the triple was extracted from.
    pub source: String,
    /// Logical publish time (monotonically increasing per store).
    pub published_at: u64,
}

/// A query pattern: each position either bound or free.
pub type Pattern<'a> = (Option<&'a str>, Option<&'a str>, Option<&'a Value>);

/// The annotation repository.
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    triples: Vec<Option<Triple>>, // tombstoned on delete
    live: usize,
    clock: u64,
    by_subject: HashMap<String, Vec<usize>>,
    by_predicate: HashMap<String, Vec<usize>>,
    by_object: HashMap<Value, Vec<usize>>,
    by_source: HashMap<String, Vec<usize>>,
}

impl TripleStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live triples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the store holds no live triples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current logical clock (advances on every publish).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Insert one triple from `source`. Returns its publish time.
    pub fn insert(
        &mut self,
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<Value>,
        source: impl Into<String>,
    ) -> u64 {
        self.clock += 1;
        let t = Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
            source: source.into(),
            published_at: self.clock,
        };
        let idx = self.triples.len();
        self.by_subject.entry(t.subject.clone()).or_default().push(idx);
        self.by_predicate.entry(t.predicate.clone()).or_default().push(idx);
        self.by_object.entry(t.object.clone()).or_default().push(idx);
        self.by_source.entry(t.source.clone()).or_default().push(idx);
        self.triples.push(Some(t));
        self.live += 1;
        self.clock
    }

    /// Replace everything previously published from `source` with the given
    /// `(subject, predicate, object)` statements — the semantics of a user
    /// hitting "publish" in the MANGROVE annotation tool.
    pub fn republish(
        &mut self,
        source: &str,
        statements: impl IntoIterator<Item = (String, String, Value)>,
    ) {
        self.retract_source(source);
        for (s, p, o) in statements {
            self.insert(s, p, o, source);
        }
    }

    /// Remove all triples from a source (page deleted). Returns the count.
    pub fn retract_source(&mut self, source: &str) -> usize {
        let Some(idxs) = self.by_source.get(source) else {
            return 0;
        };
        let mut removed = 0;
        for &i in idxs.clone().iter() {
            if self.triples[i].is_some() {
                self.triples[i] = None;
                self.live -= 1;
                removed += 1;
            }
        }
        self.by_source.remove(source);
        removed
    }

    /// All live triples matching a pattern. Uses whichever bound position
    /// has an index; a fully-free pattern scans.
    pub fn query(&self, pattern: Pattern<'_>) -> Vec<&Triple> {
        let (s, p, o) = pattern;
        let candidates: Box<dyn Iterator<Item = usize> + '_> = if let Some(s) = s {
            match self.by_subject.get(s) {
                Some(v) => Box::new(v.iter().copied()),
                None => return Vec::new(),
            }
        } else if let Some(p) = p {
            match self.by_predicate.get(p) {
                Some(v) => Box::new(v.iter().copied()),
                None => return Vec::new(),
            }
        } else if let Some(o) = o {
            match self.by_object.get(o) {
                Some(v) => Box::new(v.iter().copied()),
                None => return Vec::new(),
            }
        } else {
            Box::new(0..self.triples.len())
        };
        candidates
            .filter_map(|i| self.triples[i].as_ref())
            .filter(|t| {
                s.is_none_or(|s| t.subject == s)
                    && p.is_none_or(|p| t.predicate == p)
                    && o.is_none_or(|o| &t.object == o)
            })
            .collect()
    }

    /// Distinct subjects having the given predicate.
    pub fn subjects_with(&self, predicate: &str) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .query((None, Some(predicate), None))
            .into_iter()
            .map(|t| t.subject.as_str())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// All live triples published from `source`.
    pub fn from_source(&self, source: &str) -> Vec<&Triple> {
        self.by_source
            .get(source)
            .into_iter()
            .flatten()
            .filter_map(|&i| self.triples[i].as_ref())
            .collect()
    }

    /// Iterate over all live triples.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter().filter_map(Option::as_ref)
    }

    /// Expose the graph as a 5-column relation
    /// `triple(subject, predicate, object, source, published_at)` so the
    /// conjunctive-query engine can join over it — the "RDF-style queries"
    /// of §2.2.
    pub fn as_relation(&self) -> Relation {
        let schema = RelSchema::new(
            "triple",
            vec![
                crate::schema::Attribute::text("subject"),
                crate::schema::Attribute::text("predicate"),
                crate::schema::Attribute::text("object"),
                crate::schema::Attribute::text("source"),
                crate::schema::Attribute::int("published_at"),
            ],
        );
        let rows = self
            .iter()
            .map(|t| {
                vec![
                    Value::str(&t.subject),
                    Value::str(&t.predicate),
                    t.object.clone(),
                    Value::str(&t.source),
                    Value::Int(t.published_at as i64),
                ]
            })
            .collect();
        Relation::with_rows(schema, rows)
    }

    /// Rebuild index vectors, dropping tombstones. Called by long-running
    /// apps after heavy republish churn.
    pub fn compact(&mut self) {
        let live: Vec<Triple> = self.triples.drain(..).flatten().collect();
        self.by_subject.clear();
        self.by_predicate.clear();
        self.by_object.clear();
        self.by_source.clear();
        self.live = 0;
        for t in live {
            let idx = self.triples.len();
            self.by_subject.entry(t.subject.clone()).or_default().push(idx);
            self.by_predicate.entry(t.predicate.clone()).or_default().push(idx);
            self.by_object.entry(t.object.clone()).or_default().push(idx);
            self.by_source.entry(t.source.clone()).or_default().push(idx);
            self.triples.push(Some(t));
            self.live += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert("course/db", "course.title", "Databases", "http://uw.edu/db");
        s.insert("course/db", "course.size", Value::Int(120), "http://uw.edu/db");
        s.insert("alice", "person.phone", "555-1234", "http://uw.edu/alice");
        s.insert("alice", "person.phone", "555-9999", "http://other.org/alice");
        s
    }

    #[test]
    fn pattern_queries_use_each_bound_position() {
        let s = store();
        assert_eq!(s.query((Some("alice"), None, None)).len(), 2);
        assert_eq!(s.query((None, Some("course.title"), None)).len(), 1);
        let v = Value::str("555-1234");
        assert_eq!(s.query((None, None, Some(&v))).len(), 1);
        assert_eq!(s.query((None, None, None)).len(), 4);
        assert_eq!(
            s.query((Some("alice"), Some("person.phone"), Some(&v))).len(),
            1
        );
        assert!(s.query((Some("nobody"), None, None)).is_empty());
    }

    #[test]
    fn republish_replaces_source_triples_only() {
        let mut s = store();
        s.republish(
            "http://uw.edu/alice",
            vec![("alice".into(), "person.phone".into(), Value::str("555-0000"))],
        );
        let phones: Vec<String> = s
            .query((Some("alice"), Some("person.phone"), None))
            .iter()
            .map(|t| t.object.to_string())
            .collect();
        assert_eq!(phones.len(), 2);
        assert!(phones.contains(&"555-0000".to_string()));
        assert!(phones.contains(&"555-9999".to_string())); // other source kept
        assert!(!phones.contains(&"555-1234".to_string()));
    }

    #[test]
    fn provenance_is_recorded() {
        let s = store();
        let t = s.query((Some("course/db"), Some("course.title"), None))[0];
        assert_eq!(t.source, "http://uw.edu/db");
        assert!(t.published_at >= 1);
    }

    #[test]
    fn retract_source_removes_everything_from_it() {
        let mut s = store();
        assert_eq!(s.retract_source("http://uw.edu/db"), 2);
        assert_eq!(s.len(), 2);
        assert!(s.query((Some("course/db"), None, None)).is_empty());
        assert_eq!(s.retract_source("http://uw.edu/db"), 0);
    }

    #[test]
    fn subjects_with_dedups() {
        let s = store();
        assert_eq!(s.subjects_with("person.phone"), vec!["alice"]);
    }

    #[test]
    fn as_relation_exposes_graph() {
        let rel = store().as_relation();
        assert_eq!(rel.len(), 4);
        assert_eq!(rel.schema.arity(), 5);
        assert_eq!(rel.schema.position("predicate"), Some(1));
    }

    #[test]
    fn compact_preserves_live_triples() {
        let mut s = store();
        s.retract_source("http://uw.edu/db");
        s.compact();
        assert_eq!(s.len(), 2);
        assert_eq!(s.query((Some("alice"), None, None)).len(), 2);
        // Clock keeps advancing after compaction.
        let before = s.now();
        s.insert("x", "y", "z", "src");
        assert!(s.now() > before);
    }

    #[test]
    fn publish_times_are_monotonic() {
        let s = store();
        let times: Vec<u64> = s.iter().map(|t| t.published_at).collect();
        let mut sorted = times.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), times.len());
    }
}
