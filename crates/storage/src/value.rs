//! The dynamically-typed cell type used throughout the workspace.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single cell of a tuple.
///
/// `Value` implements total [`Ord`], [`Eq`] and [`Hash`] (floats compare by
/// [`f64::total_cmp`] and hash by bit pattern) so it can serve as a join or
/// grouping key without wrapper types.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent / unknown.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Convenience constructor from anything stringy.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Rank used to order across variants: Null < Bool < numeric < Str.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Parse a literal the way the datalog-ish query parser and generators
    /// do: `null`, `true`/`false`, integer, float, else string (with
    /// optional surrounding quotes).
    pub fn parse(src: &str) -> Value {
        let s = src.trim();
        if let Some(q) = s
            .strip_prefix('\'')
            .and_then(|x| x.strip_suffix('\''))
            .or_else(|| s.strip_prefix('"').and_then(|x| x.strip_suffix('"')))
        {
            return Value::Str(q.to_string());
        }
        match s {
            "null" => return Value::Null,
            "true" => return Value::Bool(true),
            "false" => return Value::Bool(false),
            _ => {}
        }
        if let Ok(i) = s.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = s.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(s.to_string())
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that are numerically equal must hash equally
            // (they compare equal). Hash every numeric as the total_cmp key
            // of its f64 value when exactly representable, else the raw
            // integer.
            Value::Int(i) => {
                2u8.hash(state);
                let f = *i as f64;
                if f as i64 == *i {
                    f.to_bits().hash(state);
                } else {
                    i.hash(state);
                }
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_type_ordering_is_total() {
        let mut vals = [Value::Str("a".into()),
            Value::Int(3),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true)];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[4], Value::Str("a".into()));
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(hash_of(&Value::str("x")), hash_of(&Value::Str("x".into())));
    }

    #[test]
    fn nan_is_orderable() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(1.0) < nan);
    }

    #[test]
    fn parse_literals() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("4.5"), Value::Float(4.5));
        assert_eq!(Value::parse("true"), Value::Bool(true));
        assert_eq!(Value::parse("null"), Value::Null);
        assert_eq!(Value::parse("'hi there'"), Value::str("hi there"));
        assert_eq!(Value::parse("plain"), Value::str("plain"));
    }

    #[test]
    fn display_roundtrips_for_scalars() {
        for v in [Value::Int(-3), Value::Float(1.25), Value::Bool(false), Value::Null] {
            assert_eq!(Value::parse(&v.to_string()), v);
        }
    }
}
