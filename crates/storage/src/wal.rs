//! Durable change log: an append-only, CRC-framed write-ahead log (WAL)
//! plus deterministic catalog snapshots.
//!
//! The paper's peers "can join or leave at will" (§3.1). PR 2 made
//! *transient* outages survivable (retry + dedup); this module makes
//! *restarts* survivable: every catalog mutation is journaled as a
//! [`WalRecord`] before it is applied, and recovery is snapshot + replay
//! of the LSN suffix. The design follows the LSN-window CDC shape of
//! SNIPPETS.md Snippet 3: change records keyed by a monotone LSN,
//! consumed within an acknowledged window, then truncated.
//!
//! Like everything in this workspace the format is hermetic and
//! hand-rolled — no serde, no external CRC crate.
//!
//! # On-disk layout (simulated)
//!
//! The "disk" is a byte vector (the simulation's stable storage — cheap,
//! deterministic, and truncatable at any byte offset by the torn-write
//! tests). Layout:
//!
//! ```text
//! header   = magic "RVWL" | version u32 | base_lsn u64 | crc32(header)
//! frame*   = len u32 | crc32(payload) | payload
//! payload  = lsn u64 | record bytes (see WalRecord)
//! ```
//!
//! All integers are little-endian. [`Wal::open`] validates the header and
//! every frame CRC in order and **truncates the torn tail**: the first
//! short or corrupt frame ends the log, and everything before it is the
//! recovered clean prefix. A torn write can therefore lose the records
//! that were mid-flight at the crash — exactly the contract of a real WAL
//! without `fsync` batching — but can never produce a wrong record.

use crate::catalog::Catalog;
use crate::relation::{Relation, Tuple};
use crate::schema::{AttrType, Attribute, RelSchema};
use crate::stats::{JoinObservation, JoinStats};
use crate::value::Value;
use std::sync::{Arc, Mutex};

/// Log sequence number: position of a record in a peer's mutation history.
/// Strictly increasing within one log; never reused after truncation.
pub type Lsn = u64;

const WAL_MAGIC: &[u8; 4] = b"RVWL";
const SNAP_MAGIC: &[u8; 4] = b"RVSN";
const WAL_VERSION: u32 = 1;
const HEADER_LEN: usize = 4 + 4 + 8 + 4;
/// Per-frame overhead: length prefix + CRC.
const FRAME_OVERHEAD: usize = 4 + 4;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — table built at compile time.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE) of a byte slice. Exposed so tests and the snapshot format
/// share one implementation.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

/// Append a little-endian `u32` (pub: downstream formats — e.g. the peer
/// image in `revere-pdms` — reuse this codec so all framing matches).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            out.push(3);
            put_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
    }
}

fn put_tuple(out: &mut Vec<u8>, t: &[Value]) {
    put_u32(out, t.len() as u32);
    for v in t {
        put_value(out, v);
    }
}

fn put_rows(out: &mut Vec<u8>, rows: &[Tuple]) {
    put_u32(out, rows.len() as u32);
    for r in rows {
        put_tuple(out, r);
    }
}

fn put_schema(out: &mut Vec<u8>, s: &RelSchema) {
    put_str(out, &s.name);
    put_u32(out, s.attrs.len() as u32);
    for a in &s.attrs {
        put_str(out, &a.name);
        out.push(match a.ty {
            AttrType::Text => 0,
            AttrType::Int => 1,
            AttrType::Float => 2,
            AttrType::Bool => 3,
        });
    }
}

fn put_relation(out: &mut Vec<u8>, r: &Relation) {
    put_schema(out, &r.schema);
    put_rows(out, r.rows());
}

/// Bounded cursor over a byte slice; every read is checked so corrupt or
/// truncated input decodes to `None`, never a panic. Public for the same
/// reason as [`put_u32`]: downstream binary formats share the codec.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// The next `n` bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    pub fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn value(&mut self) -> Option<Value> {
        Some(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.u64()? as i64),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Str(self.str()?),
            _ => return None,
        })
    }

    fn tuple(&mut self) -> Option<Tuple> {
        let n = self.u32()? as usize;
        let mut t = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            t.push(self.value()?);
        }
        Some(t)
    }

    fn rows(&mut self) -> Option<Vec<Tuple>> {
        let n = self.u32()? as usize;
        let mut rows = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            rows.push(self.tuple()?);
        }
        Some(rows)
    }

    fn schema(&mut self) -> Option<RelSchema> {
        let name = self.str()?;
        let n = self.u32()? as usize;
        let mut attrs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let aname = self.str()?;
            let ty = match self.u8()? {
                0 => AttrType::Text,
                1 => AttrType::Int,
                2 => AttrType::Float,
                3 => AttrType::Bool,
                _ => return None,
            };
            attrs.push(Attribute::new(aname, ty));
        }
        Some(RelSchema::new(name, attrs))
    }

    fn relation(&mut self) -> Option<Relation> {
        let schema = self.schema()?;
        let rows = self.rows()?;
        if rows.iter().any(|r| r.len() != schema.arity()) {
            return None;
        }
        Some(Relation::with_rows(schema, rows))
    }

    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One journaled catalog or propagation mutation.
///
/// The first five variants are the catalog's own mutation vocabulary
/// (what [`Catalog::replay`] consumes); the `Delta*` variants journal the
/// propagation layer's exactly-once state — sealed-but-unacked outgoing
/// updategrams, downstream acknowledgements, and incoming applications —
/// so a peer restart neither re-applies nor loses grams.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A relation was registered (or re-registered wholesale, e.g. after
    /// an opaque `get_mut` mutation).
    Register {
        /// Full relation contents at registration time.
        relation: Relation,
    },
    /// One row inserted into a named relation.
    Insert {
        /// Target relation name.
        relation: String,
        /// The inserted row.
        row: Tuple,
    },
    /// Every copy of one row deleted from a named relation.
    Delete {
        /// Target relation name.
        relation: String,
        /// The deleted row.
        row: Tuple,
    },
    /// Statistics were recomputed for dirtied relations.
    Analyze,
    /// A learned equijoin selectivity was fed back from an executed plan.
    JoinObserved {
        /// One side's relation name.
        rel_a: String,
        /// That side's column index.
        col_a: u32,
        /// The other side's relation name.
        rel_b: String,
        /// That side's column index.
        col_b: u32,
        /// Observed selectivity.
        selectivity: f64,
    },
    /// An incoming updategram was accepted and applied exactly once.
    /// Journaled *before* applying, so replay re-applies the same deltas
    /// and re-marks the gram id as seen.
    DeltaApplied {
        /// Identity of the inbound link ("<source>→<target>").
        link: String,
        /// The gram's sequence id on that link.
        id: u64,
        /// Relation the gram mutates.
        relation: String,
        /// Rows inserted by the gram.
        insert: Vec<Tuple>,
        /// Rows deleted by the gram.
        delete: Vec<Tuple>,
    },
    /// An outgoing updategram was sealed (assigned its id) and is now
    /// owed to the downstream peer until acknowledged.
    DeltaSealed {
        /// Identity of the outbound link (the target peer).
        link: String,
        /// The gram's sequence id on that link.
        id: u64,
        /// Relation the gram mutates.
        relation: String,
        /// Rows the gram inserts.
        insert: Vec<Tuple>,
        /// Rows the gram deletes.
        delete: Vec<Tuple>,
    },
    /// The downstream peer acknowledged a sealed gram; its seal record is
    /// truncatable at the next checkpoint.
    DeltaAcked {
        /// Identity of the outbound link (the target peer).
        link: String,
        /// The acknowledged gram id.
        id: u64,
    },
}

impl WalRecord {
    /// Encode to the record byte format (the frame payload minus the LSN).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Register { relation } => {
                out.push(1);
                put_relation(&mut out, relation);
            }
            WalRecord::Insert { relation, row } => {
                out.push(2);
                put_str(&mut out, relation);
                put_tuple(&mut out, row);
            }
            WalRecord::Delete { relation, row } => {
                out.push(3);
                put_str(&mut out, relation);
                put_tuple(&mut out, row);
            }
            WalRecord::Analyze => out.push(4),
            WalRecord::JoinObserved { rel_a, col_a, rel_b, col_b, selectivity } => {
                out.push(5);
                put_str(&mut out, rel_a);
                put_u32(&mut out, *col_a);
                put_str(&mut out, rel_b);
                put_u32(&mut out, *col_b);
                put_u64(&mut out, selectivity.to_bits());
            }
            WalRecord::DeltaApplied { link, id, relation, insert, delete } => {
                out.push(6);
                put_str(&mut out, link);
                put_u64(&mut out, *id);
                put_str(&mut out, relation);
                put_rows(&mut out, insert);
                put_rows(&mut out, delete);
            }
            WalRecord::DeltaSealed { link, id, relation, insert, delete } => {
                out.push(7);
                put_str(&mut out, link);
                put_u64(&mut out, *id);
                put_str(&mut out, relation);
                put_rows(&mut out, insert);
                put_rows(&mut out, delete);
            }
            WalRecord::DeltaAcked { link, id } => {
                out.push(8);
                put_str(&mut out, link);
                put_u64(&mut out, *id);
            }
        }
        out
    }

    /// Decode a record; `None` on any malformation (unknown tag, short
    /// buffer, trailing garbage, arity mismatch).
    pub fn from_bytes(bytes: &[u8]) -> Option<WalRecord> {
        let mut r = Reader::new(bytes);
        let rec = match r.u8()? {
            1 => WalRecord::Register { relation: r.relation()? },
            2 => WalRecord::Insert { relation: r.str()?, row: r.tuple()? },
            3 => WalRecord::Delete { relation: r.str()?, row: r.tuple()? },
            4 => WalRecord::Analyze,
            5 => WalRecord::JoinObserved {
                rel_a: r.str()?,
                col_a: r.u32()?,
                rel_b: r.str()?,
                col_b: r.u32()?,
                selectivity: f64::from_bits(r.u64()?),
            },
            6 => WalRecord::DeltaApplied {
                link: r.str()?,
                id: r.u64()?,
                relation: r.str()?,
                insert: r.rows()?,
                delete: r.rows()?,
            },
            7 => WalRecord::DeltaSealed {
                link: r.str()?,
                id: r.u64()?,
                relation: r.str()?,
                insert: r.rows()?,
                delete: r.rows()?,
            },
            8 => WalRecord::DeltaAcked { link: r.str()?, id: r.u64()? },
            _ => return None,
        };
        r.done().then_some(rec)
    }
}

// ---------------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------------

/// What [`Wal::open`] found: how much of the log was recoverable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalOpenReport {
    /// Clean records recovered.
    pub records: usize,
    /// Bytes dropped from the torn tail (0 for a cleanly closed log).
    pub torn_bytes: usize,
    /// True when the header itself was missing or corrupt and the log was
    /// reinitialized empty.
    pub header_rebuilt: bool,
}

impl WalOpenReport {
    /// True when the whole log decoded without loss.
    pub fn is_clean(&self) -> bool {
        self.torn_bytes == 0 && !self.header_rebuilt
    }
}

/// An append-only log of [`WalRecord`]s over simulated stable storage.
///
/// Appends assign strictly increasing LSNs starting at the header's
/// `base_lsn`. [`Wal::truncate_below`] drops the acknowledged prefix and
/// advances `base_lsn` so truncated LSNs are never reused.
#[derive(Debug, Clone)]
pub struct Wal {
    base_lsn: Lsn,
    entries: Vec<(Lsn, WalRecord)>,
    bytes: Vec<u8>,
}

impl Default for Wal {
    fn default() -> Self {
        Wal::new()
    }
}

impl Wal {
    /// A fresh empty log starting at LSN 0.
    pub fn new() -> Self {
        Self::with_base(0)
    }

    /// A fresh empty log whose first record will get `base_lsn`.
    pub fn with_base(base_lsn: Lsn) -> Self {
        let mut w = Wal { base_lsn, entries: Vec::new(), bytes: Vec::new() };
        w.bytes = Self::header_bytes(base_lsn);
        w
    }

    fn header_bytes(base_lsn: Lsn) -> Vec<u8> {
        let mut h = Vec::with_capacity(HEADER_LEN);
        h.extend_from_slice(WAL_MAGIC);
        put_u32(&mut h, WAL_VERSION);
        put_u64(&mut h, base_lsn);
        let crc = crc32(&h);
        put_u32(&mut h, crc);
        h
    }

    /// Open a log from its serialized bytes, validating the header and
    /// every frame CRC, and truncating the torn tail. Never fails: a
    /// hopeless byte soup recovers as an empty log (and the report says
    /// so).
    pub fn open(bytes: &[u8]) -> (Wal, WalOpenReport) {
        let mut report = WalOpenReport::default();
        if bytes.is_empty() {
            return (Wal::new(), report);
        }
        if bytes.len() < HEADER_LEN
            || &bytes[0..4] != WAL_MAGIC
            || u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != WAL_VERSION
            || u32::from_le_bytes(bytes[HEADER_LEN - 4..HEADER_LEN].try_into().unwrap())
                != crc32(&bytes[..HEADER_LEN - 4])
        {
            report.header_rebuilt = true;
            report.torn_bytes = bytes.len();
            return (Wal::new(), report);
        }
        let base_lsn = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let mut wal = Wal::with_base(base_lsn);
        let mut pos = HEADER_LEN;
        let mut last_lsn: Option<Lsn> = None;
        while pos < bytes.len() {
            let Some(frame) = Self::read_frame(&bytes[pos..]) else { break };
            let (lsn, rec, frame_len) = frame;
            // LSNs must start at or after the base and strictly increase;
            // anything else is corruption and ends the clean prefix.
            let ok = match last_lsn {
                None => lsn >= base_lsn,
                Some(prev) => lsn > prev,
            };
            if !ok {
                break;
            }
            last_lsn = Some(lsn);
            wal.push_frame(lsn, rec);
            pos += frame_len;
        }
        report.records = wal.entries.len();
        report.torn_bytes = bytes.len() - pos;
        (wal, report)
    }

    /// Decode one frame at the start of `buf`; `None` if short or corrupt.
    fn read_frame(buf: &[u8]) -> Option<(Lsn, WalRecord, usize)> {
        if buf.len() < FRAME_OVERHEAD {
            return None;
        }
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let end = FRAME_OVERHEAD.checked_add(len)?;
        if end > buf.len() {
            return None;
        }
        let payload = &buf[FRAME_OVERHEAD..end];
        if crc32(payload) != crc || payload.len() < 8 {
            return None;
        }
        let lsn = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        let rec = WalRecord::from_bytes(&payload[8..])?;
        Some((lsn, rec, end))
    }

    fn push_frame(&mut self, lsn: Lsn, rec: WalRecord) {
        let mut payload = Vec::new();
        put_u64(&mut payload, lsn);
        payload.extend_from_slice(&rec.to_bytes());
        put_u32(&mut self.bytes, payload.len() as u32);
        put_u32(&mut self.bytes, crc32(&payload));
        self.bytes.extend_from_slice(&payload);
        self.entries.push((lsn, rec));
    }

    /// Append a record, assigning and returning its LSN.
    pub fn append(&mut self, rec: &WalRecord) -> Lsn {
        let lsn = self.next_lsn();
        self.push_frame(lsn, rec.clone());
        lsn
    }

    /// The LSN the next appended record will get.
    pub fn next_lsn(&self) -> Lsn {
        self.entries.last().map(|(l, _)| l + 1).unwrap_or(self.base_lsn)
    }

    /// The retained records in LSN order.
    pub fn records(&self) -> &[(Lsn, WalRecord)] {
        &self.entries
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no record is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The serialized log (header + frames) as it would sit on disk.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Drop every record with `lsn < floor` (they are captured by a
    /// snapshot and acknowledged downstream) and advance `base_lsn` so
    /// truncated LSNs are never reused. Returns how many records were
    /// dropped. A floor beyond `next_lsn` is clamped (LSNs never skip).
    pub fn truncate_below(&mut self, floor: Lsn) -> usize {
        let floor = floor.min(self.next_lsn());
        if floor <= self.base_lsn {
            return 0;
        }
        let keep: Vec<(Lsn, WalRecord)> =
            self.entries.iter().filter(|(l, _)| *l >= floor).cloned().collect();
        let dropped = self.entries.len() - keep.len();
        self.base_lsn = floor;
        self.entries = Vec::new();
        self.bytes = Self::header_bytes(floor);
        for (lsn, rec) in keep {
            self.push_frame(lsn, rec);
        }
        dropped
    }
}

/// A clonable, thread-safe handle to one peer's [`Wal`] — the journal a
/// [`Catalog`] and its propagation links write through. Lock poisoning is
/// recovered, matching the [`crate::SharedCatalog`] policy.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    inner: Arc<Mutex<Wal>>,
}

impl Journal {
    /// A journal over a fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an already-opened log (e.g. after crash recovery).
    pub fn from_wal(wal: Wal) -> Self {
        Journal { inner: Arc::new(Mutex::new(wal)) }
    }

    fn with<T>(&self, f: impl FnOnce(&mut Wal) -> T) -> T {
        f(&mut self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Append a record; returns its LSN.
    pub fn append(&self, rec: &WalRecord) -> Lsn {
        self.with(|w| w.append(rec))
    }

    /// The LSN the next record will get.
    pub fn next_lsn(&self) -> Lsn {
        self.with(|w| w.next_lsn())
    }

    /// Copy of the serialized log bytes (what a crash leaves behind).
    pub fn bytes(&self) -> Vec<u8> {
        self.with(|w| w.bytes().to_vec())
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.with(|w| w.byte_len())
    }

    /// Number of retained records.
    pub fn record_count(&self) -> usize {
        self.with(|w| w.len())
    }

    /// Snapshot of the retained records in LSN order.
    pub fn records(&self) -> Vec<(Lsn, WalRecord)> {
        self.with(|w| w.records().to_vec())
    }

    /// See [`Wal::truncate_below`].
    pub fn truncate_below(&self, floor: Lsn) -> usize {
        self.with(|w| w.truncate_below(floor))
    }

    /// Replace the wrapped log (recovery installs the reopened log here so
    /// every handle — catalog, links, disk — sees the recovered state).
    pub fn replace(&self, wal: Wal) {
        self.with(|w| *w = wal);
    }
}

// ---------------------------------------------------------------------------
// Catalog snapshots
// ---------------------------------------------------------------------------

/// Deterministic snapshot of a catalog's durable state: relations in name
/// order with rows in [`Relation::sorted`] order, plus the learned join
/// selectivities. Two catalogs holding the same data encode to identical
/// bytes regardless of insertion order — the byte-identity invariant E16
/// asserts. `as_of` is the *exclusive* LSN high-water mark: replaying
/// records with `lsn >= as_of` on top of the snapshot reconstructs the
/// live catalog.
///
/// Per-relation statistics and the stats epoch are deliberately *not*
/// encoded: statistics are recomputed from data on decode (they are a
/// deterministic function of it), and epochs are process-local cache
/// counters, not durable state.
pub fn encode_catalog(cat: &Catalog, as_of: Lsn) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAP_MAGIC);
    put_u32(&mut out, WAL_VERSION);
    put_u64(&mut out, as_of);
    let names: Vec<&str> = cat.names().collect();
    put_u32(&mut out, names.len() as u32);
    for name in names {
        let rel = cat.get(name).expect("names() returned it");
        put_relation(&mut out, &rel.sorted());
    }
    let js = cat.join_stats();
    put_u32(&mut out, js.len() as u32);
    for (((ra, ca), (rb, cb)), o) in js.iter() {
        put_str(&mut out, ra);
        put_u32(&mut out, *ca as u32);
        put_str(&mut out, rb);
        put_u32(&mut out, *cb as u32);
        put_u64(&mut out, o.selectivity.to_bits());
        put_u64(&mut out, o.observations);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decode a snapshot produced by [`encode_catalog`]. Returns the catalog
/// and the snapshot's exclusive LSN high-water mark; `None` if the bytes
/// are corrupt (bad CRC, magic, or structure).
pub fn decode_catalog(bytes: &[u8]) -> Option<(Catalog, Lsn)> {
    if bytes.len() < 4 {
        return None;
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
        return None;
    }
    let mut r = Reader::new(body);
    if r.take(4)? != SNAP_MAGIC || r.u32()? != WAL_VERSION {
        return None;
    }
    let as_of = r.u64()?;
    let n_rels = r.u32()? as usize;
    let mut cat = Catalog::new();
    for _ in 0..n_rels {
        cat.register(r.relation()?);
    }
    let n_join = r.u32()? as usize;
    let mut js = JoinStats::default();
    for _ in 0..n_join {
        let ra = r.str()?;
        let ca = r.u32()? as usize;
        let rb = r.str()?;
        let cb = r.u32()? as usize;
        let obs = JoinObservation {
            selectivity: f64::from_bits(r.u64()?),
            observations: r.u64()?,
        };
        js.restore(&ra, ca, &rb, cb, obs);
    }
    cat.absorb_join_stats(&js);
    r.done().then_some((cat, as_of))
}

// ---------------------------------------------------------------------------
// Catalog recovery (snapshot + suffix replay)
// ---------------------------------------------------------------------------

/// What a recovery did: how much was restored from the snapshot vs
/// replayed from the log suffix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// True when a snapshot was decoded (false: full-history replay).
    pub snapshot_used: bool,
    /// The snapshot's exclusive LSN high-water mark (0 without one).
    pub as_of: Lsn,
    /// Log records replayed (those with `lsn >= as_of`).
    pub replayed: usize,
    /// Log records skipped as already captured by the snapshot.
    pub skipped: usize,
    /// What opening the log found (torn tail, header state).
    pub open: WalOpenReport,
}

/// Recover a catalog from an optional snapshot plus the serialized log:
/// decode the snapshot, then replay only the records with `lsn >= as_of`
/// — the LSN suffix, not full history. Returns `None` only when snapshot
/// bytes are present but corrupt (a torn *log* tail is recovered, but a
/// corrupt snapshot means the baseline itself is gone).
pub fn recover_catalog(
    snapshot: Option<&[u8]>,
    log_bytes: &[u8],
) -> Option<(Catalog, RecoveryReport)> {
    let mut report = RecoveryReport::default();
    let mut cat = match snapshot {
        Some(bytes) => {
            let (cat, as_of) = decode_catalog(bytes)?;
            report.snapshot_used = true;
            report.as_of = as_of;
            cat
        }
        None => Catalog::new(),
    };
    let (wal, open) = Wal::open(log_bytes);
    report.open = open;
    for (lsn, rec) in wal.records() {
        if *lsn < report.as_of {
            report.skipped += 1;
        } else {
            cat.replay(rec);
            report.replayed += 1;
        }
    }
    Some((cat, report))
}

// ---------------------------------------------------------------------------
// Change-data capture: journal records as signed row deltas
// ---------------------------------------------------------------------------

/// Expand journaled mutations into Z-set row deltas — `(relation, row,
/// weight)` with `+1` per inserted occurrence and `-m` for a delete of a
/// row stored with multiplicity `m` (matching [`Catalog::delete`], which
/// removes every copy). The caller supplies a `shadow` catalog mirroring
/// the journaled catalog's state *before* `records`; each record is
/// replayed into it as its delta is extracted, so delete multiplicities
/// and `Register` replacements are read from the correct pre-state, and
/// consecutive calls over consecutive LSN windows compose. Non-row
/// records (`Analyze`, `JoinObserved`, seal/ack bookkeeping) contribute
/// nothing; `Register` retracts the previous contents wholesale and
/// asserts the new; `DeltaApplied` expands like the updategram it
/// journaled — deletes first (repeated rows retract once), then inserts.
pub fn row_deltas(
    records: &[(Lsn, WalRecord)],
    shadow: &mut Catalog,
) -> Vec<(String, Tuple, i64)> {
    fn mult(shadow: &Catalog, rel: &str, row: &[Value]) -> i64 {
        shadow.get(rel).map_or(0, |r| r.iter().filter(|t| t.as_slice() == row).count() as i64)
    }
    let mut out: Vec<(String, Tuple, i64)> = Vec::new();
    for (_, rec) in records {
        match rec {
            WalRecord::Register { relation } => {
                let name = &relation.schema.name;
                if let Some(old) = shadow.get(name) {
                    for row in old.iter() {
                        out.push((name.clone(), row.clone(), -1));
                    }
                }
                for row in relation.iter() {
                    out.push((name.clone(), row.clone(), 1));
                }
            }
            WalRecord::Insert { relation, row } => {
                if shadow.get(relation).is_some() {
                    out.push((relation.clone(), row.clone(), 1));
                }
            }
            WalRecord::Delete { relation, row } => {
                let m = mult(shadow, relation, row);
                if m > 0 {
                    out.push((relation.clone(), row.clone(), -m));
                }
            }
            WalRecord::DeltaApplied { relation, insert, delete, .. } => {
                if shadow.get(relation).is_some() {
                    // Repeated delete rows in one gram retract once; the
                    // per-row replay below removes every copy regardless.
                    let mut seen: Vec<&Tuple> = Vec::new();
                    for row in delete {
                        if seen.contains(&row) {
                            continue;
                        }
                        seen.push(row);
                        let m = mult(shadow, relation, row);
                        if m > 0 {
                            out.push((relation.clone(), row.clone(), -m));
                        }
                    }
                    for row in insert {
                        out.push((relation.clone(), row.clone(), 1));
                    }
                }
            }
            WalRecord::Analyze
            | WalRecord::JoinObserved { .. }
            | WalRecord::DeltaSealed { .. }
            | WalRecord::DeltaAcked { .. } => {}
        }
        shadow.replay(rec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_relation() -> Relation {
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![Attribute::text("title"), Attribute::int("enrollment")],
        ));
        r.insert(vec![Value::str("Databases"), Value::Int(120)]);
        r.insert(vec![Value::str("Ancient Greece"), Value::Int(40)]);
        r
    }

    #[test]
    fn row_deltas_track_multiplicity_and_compose_across_windows() {
        // A journaled catalog mutates; a shadow started from the same
        // pre-state must reconstruct every change as signed deltas.
        let mut cat = Catalog::new();
        cat.register(sample_relation());
        let mut shadow = Catalog::new();
        shadow.register(sample_relation());
        let journal = Journal::new();
        cat.attach_journal(journal.clone());

        let dup = vec![Value::str("Databases"), Value::Int(120)];
        cat.insert("course", dup.clone()); // multiplicity 2
        cat.insert("course", vec![Value::str("Logic"), Value::Int(15)]);
        let first: Vec<_> = journal.records();
        let d1 = row_deltas(&first, &mut shadow);
        assert_eq!(
            d1,
            vec![
                ("course".to_string(), dup.clone(), 1),
                ("course".to_string(), vec![Value::str("Logic"), Value::Int(15)], 1),
            ]
        );

        // Second window: the delete retracts BOTH stored copies, and the
        // shadow (already advanced past window one) knows the right count.
        cat.delete("course", &dup);
        let second: Vec<_> =
            journal.records().into_iter().filter(|(l, _)| *l >= first.len() as u64).collect();
        let d2 = row_deltas(&second, &mut shadow);
        assert_eq!(d2, vec![("course".to_string(), dup.clone(), -2)]);
        assert!(!shadow.get("course").expect("shadow has course").contains(&dup));

        // DeltaApplied expands like the gram it journaled: repeated
        // delete rows retract once, inserts count per occurrence.
        let gram_rec = WalRecord::DeltaApplied {
            link: "S→T".into(),
            id: 1,
            relation: "course".into(),
            insert: vec![vec![Value::str("Rhetoric"), Value::Int(9)]],
            delete: vec![
                vec![Value::str("Logic"), Value::Int(15)],
                vec![Value::str("Logic"), Value::Int(15)],
            ],
        };
        let d3 = row_deltas(&[(99, gram_rec)], &mut shadow);
        assert_eq!(
            d3,
            vec![
                ("course".to_string(), vec![Value::str("Logic"), Value::Int(15)], -1),
                ("course".to_string(), vec![Value::str("Rhetoric"), Value::Int(9)], 1),
            ]
        );
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_bytes() {
        let recs = vec![
            WalRecord::Register { relation: sample_relation() },
            WalRecord::Insert {
                relation: "course".into(),
                row: vec![Value::str("Roman Law"), Value::Int(25)],
            },
            WalRecord::Delete {
                relation: "course".into(),
                row: vec![Value::Null, Value::Float(1.5)],
            },
            WalRecord::Analyze,
            WalRecord::JoinObserved {
                rel_a: "A.r".into(),
                col_a: 0,
                rel_b: "B.s".into(),
                col_b: 2,
                selectivity: 0.125,
            },
            WalRecord::DeltaApplied {
                link: "S→T".into(),
                id: 7,
                relation: "m".into(),
                insert: vec![vec![Value::Bool(true)]],
                delete: vec![],
            },
            WalRecord::DeltaSealed {
                link: "T".into(),
                id: 9,
                relation: "m".into(),
                insert: vec![],
                delete: vec![vec![Value::Int(-3)]],
            },
            WalRecord::DeltaAcked { link: "T".into(), id: 9 },
        ];
        for rec in recs {
            let bytes = rec.to_bytes();
            assert_eq!(WalRecord::from_bytes(&bytes), Some(rec.clone()), "{rec:?}");
            // Trailing garbage must be rejected, not silently ignored.
            let mut longer = bytes.clone();
            longer.push(0);
            assert_eq!(WalRecord::from_bytes(&longer), None);
        }
        assert_eq!(WalRecord::from_bytes(&[42]), None, "unknown tag");
        assert_eq!(WalRecord::from_bytes(&[]), None, "empty");
    }

    #[test]
    fn log_appends_assign_increasing_lsns_and_reopen_cleanly() {
        let mut w = Wal::new();
        assert_eq!(w.append(&WalRecord::Analyze), 0);
        assert_eq!(w.append(&WalRecord::Analyze), 1);
        let (re, report) = Wal::open(w.bytes());
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(re.records(), w.records());
        assert_eq!(re.next_lsn(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_clean_prefix() {
        let mut w = Wal::new();
        for i in 0..4 {
            w.append(&WalRecord::Insert {
                relation: "t".into(),
                row: vec![Value::Int(i)],
            });
        }
        let full = w.bytes().to_vec();
        // Cut mid-way through the last frame.
        let cut = full.len() - 3;
        let (re, report) = Wal::open(&full[..cut]);
        assert_eq!(re.len(), 3);
        assert!(!report.is_clean());
        assert_eq!(report.torn_bytes, cut - re.byte_len(), "everything past the clean prefix");
        // New appends continue after the clean prefix.
        let mut re = re;
        assert_eq!(re.next_lsn(), 3);
        re.append(&WalRecord::Analyze);
        let (again, rep2) = Wal::open(re.bytes());
        assert!(rep2.is_clean());
        assert_eq!(again.len(), 4);
    }

    #[test]
    fn corrupt_byte_ends_the_clean_prefix() {
        let mut w = Wal::new();
        for i in 0..3 {
            w.append(&WalRecord::Insert { relation: "t".into(), row: vec![Value::Int(i)] });
        }
        let mut bytes = w.bytes().to_vec();
        // Flip one bit in the middle record's payload.
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        let (re, report) = Wal::open(&bytes);
        assert!(re.len() < 3, "corruption truncates from the flipped frame");
        assert!(report.torn_bytes > 0);
    }

    #[test]
    fn corrupt_header_recovers_as_an_empty_log() {
        let mut w = Wal::new();
        w.append(&WalRecord::Analyze);
        let mut bytes = w.bytes().to_vec();
        bytes[1] ^= 0xFF;
        let (re, report) = Wal::open(&bytes);
        assert!(re.is_empty());
        assert!(report.header_rebuilt);
        assert_eq!(report.torn_bytes, bytes.len());
    }

    #[test]
    fn truncate_below_drops_the_prefix_and_never_reuses_lsns() {
        let mut w = Wal::new();
        for i in 0..5 {
            w.append(&WalRecord::Insert { relation: "t".into(), row: vec![Value::Int(i)] });
        }
        let before = w.byte_len();
        assert_eq!(w.truncate_below(3), 3);
        assert!(w.byte_len() < before, "truncation reclaims bytes");
        assert_eq!(w.records().iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(w.next_lsn(), 5);
        // Truncating everything still keeps the LSN sequence monotone.
        assert_eq!(w.truncate_below(u64::MAX), 2);
        assert!(w.is_empty());
        assert_eq!(w.next_lsn(), 5);
        assert_eq!(w.append(&WalRecord::Analyze), 5);
        // The truncated log reopens with its base intact.
        let (re, report) = Wal::open(w.bytes());
        assert!(report.is_clean());
        assert_eq!(re.records().iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn snapshot_encoding_is_order_insensitive_and_crc_checked() {
        let mut a = Catalog::new();
        a.create(RelSchema::text("t", &["v"]));
        a.insert("t", vec![Value::str("x")]);
        a.insert("t", vec![Value::str("y")]);
        a.note_join_overlap("A.r", 0, "B.s", 1, 0.25);
        let mut b = Catalog::new();
        b.create(RelSchema::text("t", &["v"]));
        b.insert("t", vec![Value::str("y")]);
        b.insert("t", vec![Value::str("x")]);
        b.note_join_overlap("B.s", 1, "A.r", 0, 0.25);
        assert_eq!(encode_catalog(&a, 9), encode_catalog(&b, 9));

        let bytes = encode_catalog(&a, 9);
        let (decoded, as_of) = decode_catalog(&bytes).expect("clean snapshot");
        assert_eq!(as_of, 9);
        assert_eq!(encode_catalog(&decoded, 9), bytes, "decode is the inverse");
        assert_eq!(decoded.join_stats().overlap("A.r", 0, "B.s", 1), Some(0.25));
        assert_eq!(
            decoded.join_stats().iter().next().unwrap().1.observations,
            a.join_stats().iter().next().unwrap().1.observations,
            "observation counts survive the round trip"
        );
        // Any flipped byte is caught by the CRC.
        let mut bad = bytes.clone();
        bad[10] ^= 1;
        assert!(decode_catalog(&bad).is_none());
        assert!(decode_catalog(&[]).is_none());
    }

    #[test]
    fn recover_catalog_replays_only_the_suffix() {
        let mut live = Catalog::new();
        let journal = Journal::new();
        live.attach_journal(journal.clone());
        live.create(RelSchema::text("t", &["v"]));
        live.insert("t", vec![Value::str("a")]);
        // Checkpoint here: the snapshot covers everything so far.
        let snap = encode_catalog(&live, journal.next_lsn());
        live.insert("t", vec![Value::str("b")]);
        live.delete("t", &[Value::str("a")]);

        let (rec, report) =
            recover_catalog(Some(&snap), &journal.bytes()).expect("recovers");
        assert!(report.snapshot_used);
        assert_eq!(report.replayed, 2, "only the post-snapshot suffix");
        assert_eq!(report.skipped, 2, "pre-snapshot records are skipped");
        assert_eq!(encode_catalog(&rec, 0), encode_catalog(&live, 0));

        // Full-history replay (no snapshot) lands in the same state.
        let (rec2, report2) = recover_catalog(None, &journal.bytes()).expect("recovers");
        assert!(!report2.snapshot_used);
        assert_eq!(report2.replayed, 4);
        assert_eq!(encode_catalog(&rec2, 0), encode_catalog(&live, 0));
    }
}
