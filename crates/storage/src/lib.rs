//! Storage substrate for the REVERE reproduction.
//!
//! MANGROVE "stores the data in a relational database using a simple graph
//! representation" and queries it with an RDF-style engine (§2.2 of the
//! paper); Piazza peers hold "stored relations" (§3.1). This crate provides
//! both storage shapes, built from scratch:
//!
//! * [`value`] — the dynamically-typed [`Value`] cell type.
//! * [`schema`] — relation schemas ([`RelSchema`]) and database schemas
//!   ([`DbSchema`]): the unit that corpus tools and peer mappings operate on.
//! * [`relation`] — in-memory [`Relation`]s (bags of tuples).
//! * [`column`] — typed column vectors ([`ColumnVec`]), relation→batch
//!   pivoting ([`ColumnarBatch`]) and selection bitmaps ([`SelBitmap`]):
//!   the columnar layer under the vectorized evaluator.
//! * [`index`] — hash indexes over one or more columns.
//! * [`engine`] — iterator-style operators: scan, filter, project, hash
//!   join, union, distinct, sort, grouped aggregation.
//! * [`triples`] — the provenance-carrying triple store MANGROVE publishes
//!   annotations into, with SPO/POS/OSP indexes (our stand-in for Jena \[33\]).
//! * [`catalog`] — a named collection of relations, plus a thread-safe
//!   shared wrapper used by the PDMS peers.
//! * [`stats`] — incremental per-relation/per-column statistics (row,
//!   distinct and value-frequency counts) behind the catalog's stats
//!   epoch; what the query planner costs join orders with.
//! * [`wal`] — the durable change log: CRC-framed append-only
//!   [`wal::WalRecord`] journal with per-record LSNs, deterministic
//!   catalog snapshots, and snapshot + suffix-replay recovery.

pub mod catalog;
pub mod column;
pub mod engine;
pub mod index;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod triples;
pub mod value;
pub mod wal;

pub use catalog::{Catalog, SharedCatalog};
pub use column::{ColumnVec, ColumnarBatch, SelBitmap};
pub use engine::{AggFn, Predicate};
pub use index::HashIndex;
pub use relation::{Relation, Tuple};
pub use schema::{AttrType, Attribute, DbSchema, RelSchema};
pub use stats::{mcv_join_overlap, ColumnStats, JoinObservation, JoinStats, RelStats};
pub use triples::{Triple, TripleStore};
pub use value::Value;
pub use wal::{
    decode_catalog, encode_catalog, recover_catalog, row_deltas, Journal, Lsn, RecoveryReport,
    Wal, WalOpenReport, WalRecord,
};
