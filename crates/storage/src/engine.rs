//! Relational operators over [`Relation`]s.
//!
//! These are the physical operators the conjunctive-query evaluator
//! (`revere-query`) and the instant-gratification applications
//! (`revere-mangrove`) execute: selection, projection, hash join, union,
//! distinct, sort, and grouped aggregation.

use crate::index::HashIndex;
use crate::relation::{Relation, Tuple};
use crate::schema::{AttrType, Attribute, RelSchema};
use crate::value::Value;
use revere_util::obs::{names, Obs};

/// A selection predicate over a single tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Column equals a constant.
    Eq(usize, Value),
    /// Column does not equal a constant.
    Ne(usize, Value),
    /// Column less-than a constant.
    Lt(usize, Value),
    /// Column greater-than a constant.
    Gt(usize, Value),
    /// Two columns are equal (e.g. a self-join condition after a cross
    /// product, or a repeated variable in a conjunctive query).
    ColEq(usize, usize),
    /// Conjunction.
    And(Vec<Predicate>),
}

impl Predicate {
    /// Evaluate against one row.
    pub fn matches(&self, row: &Tuple) -> bool {
        match self {
            Predicate::Eq(c, v) => &row[*c] == v,
            Predicate::Ne(c, v) => &row[*c] != v,
            Predicate::Lt(c, v) => row[*c] < *v,
            Predicate::Gt(c, v) => row[*c] > *v,
            Predicate::ColEq(a, b) => row[*a] == row[*b],
            Predicate::And(ps) => ps.iter().all(|p| p.matches(row)),
        }
    }
}

/// σ — keep the rows satisfying `pred`.
pub fn select(rel: &Relation, pred: &Predicate) -> Relation {
    select_obs(rel, pred, &Obs::disabled())
}

/// [`select`] with scan accounting: counts `storage.scan.rows_read` /
/// `storage.scan.rows_kept` into `obs`. Output is identical to
/// [`select`] whether or not `obs` is enabled.
pub fn select_obs(rel: &Relation, pred: &Predicate, obs: &Obs) -> Relation {
    let rows: Vec<Tuple> = rel.iter().filter(|r| pred.matches(r)).cloned().collect();
    obs.inc(names::STORAGE_SCAN_ROWS_READ, rel.len() as u64);
    obs.inc(names::STORAGE_SCAN_ROWS_KEPT, rows.len() as u64);
    Relation::with_rows(rel.schema.clone(), rows)
}

/// π — keep the given columns, in the given order. Bag semantics (no
/// implicit dedup).
pub fn project(rel: &Relation, cols: &[usize]) -> Relation {
    let schema = RelSchema::new(
        rel.schema.name.clone(),
        cols.iter().map(|&c| rel.schema.attrs[c].clone()).collect(),
    );
    let rows = rel
        .iter()
        .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
        .collect();
    Relation::with_rows(schema, rows)
}

/// ⋈ — hash join on `left.cols == right.cols`; output is the concatenation
/// of the left and right tuples (all columns of both, left first).
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_cols: &[usize],
    right_cols: &[usize],
) -> Relation {
    hash_join_obs(left, right, left_cols, right_cols, &Obs::disabled())
}

/// [`hash_join`] with join accounting: counts `storage.join.build_rows`,
/// `storage.join.probe_rows`, `storage.join.index_hits` (per-probe index
/// matches) and `storage.join.rows_matched` into `obs`. Output is identical
/// to [`hash_join`] whether or not `obs` is enabled.
pub fn hash_join_obs(
    left: &Relation,
    right: &Relation,
    left_cols: &[usize],
    right_cols: &[usize],
    obs: &Obs,
) -> Relation {
    assert_eq!(left_cols.len(), right_cols.len(), "join key arity mismatch");
    // Build on the smaller side.
    let (build, probe, build_cols, probe_cols, build_is_left) = if left.len() <= right.len() {
        (left, right, left_cols, right_cols, true)
    } else {
        (right, left, right_cols, left_cols, false)
    };
    let idx = HashIndex::build(build, build_cols);
    obs.inc(names::STORAGE_JOIN_ROWS_BUILT, build.len() as u64);
    obs.inc(names::STORAGE_JOIN_ROWS_PROBED, probe.len() as u64);
    let mut attrs =
        Vec::with_capacity(left.schema.arity() + right.schema.arity());
    attrs.extend(left.schema.attrs.iter().cloned());
    attrs.extend(right.schema.attrs.iter().cloned());
    let schema = RelSchema::new(format!("{}_{}", left.schema.name, right.schema.name), attrs);
    let mut out = Relation::new(schema);
    let mut hits = 0u64;
    for probe_row in probe.iter() {
        let matches = idx.probe(probe_row, probe_cols);
        if !matches.is_empty() {
            hits += 1;
        }
        for &pos in matches {
            let build_row = &build.rows()[pos];
            let mut joined = Vec::with_capacity(probe_row.len() + build_row.len());
            if build_is_left {
                joined.extend(build_row.iter().cloned());
                joined.extend(probe_row.iter().cloned());
            } else {
                joined.extend(probe_row.iter().cloned());
                joined.extend(build_row.iter().cloned());
            }
            out.insert(joined);
        }
    }
    obs.inc(names::STORAGE_JOIN_INDEX_HITS, hits);
    obs.inc(names::STORAGE_JOIN_ROWS_MATCHED, out.len() as u64);
    out
}

/// × — cross product (used when a conjunctive query has disconnected
/// atoms).
pub fn cross(left: &Relation, right: &Relation) -> Relation {
    hash_join(left, right, &[], &[])
}

/// ∪ — bag union of two union-compatible relations.
///
/// # Panics
/// Panics if arities differ.
pub fn union(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(a.schema.arity(), b.schema.arity(), "union arity mismatch");
    let mut rows = Vec::with_capacity(a.len() + b.len());
    rows.extend(a.iter().cloned());
    rows.extend(b.iter().cloned());
    Relation::with_rows(a.schema.clone(), rows)
}

/// δ — duplicate elimination.
pub fn distinct(rel: &Relation) -> Relation {
    rel.distinct()
}

/// Sort rows by the given columns ascending.
pub fn sort_by(rel: &Relation, cols: &[usize]) -> Relation {
    let mut rows: Vec<Tuple> = rel.rows().to_vec();
    rows.sort_by(|a, b| {
        for &c in cols {
            let ord = a[c].cmp(&b[c]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Relation::with_rows(rel.schema.clone(), rows)
}

/// An aggregate function for [`aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Row count.
    Count,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Numeric sum (nulls and non-numerics ignored).
    Sum,
    /// Numeric average (nulls and non-numerics ignored).
    Avg,
}

/// γ — grouped aggregation: group by `group_cols`, apply `(agg, col)` per
/// aggregate. Output schema is the group columns followed by one column per
/// aggregate. Groups appear in order of first occurrence.
pub fn aggregate(rel: &Relation, group_cols: &[usize], aggs: &[(AggFn, usize)]) -> Relation {
    let mut attrs: Vec<Attribute> = group_cols
        .iter()
        .map(|&c| rel.schema.attrs[c].clone())
        .collect();
    for (f, c) in aggs {
        let base = &rel.schema.attrs[*c].name;
        let (name, ty) = match f {
            AggFn::Count => (format!("count_{base}"), AttrType::Int),
            AggFn::Min => (format!("min_{base}"), rel.schema.attrs[*c].ty),
            AggFn::Max => (format!("max_{base}"), rel.schema.attrs[*c].ty),
            AggFn::Sum => (format!("sum_{base}"), AttrType::Float),
            AggFn::Avg => (format!("avg_{base}"), AttrType::Float),
        };
        attrs.push(Attribute::new(name, ty));
    }
    let schema = RelSchema::new(format!("agg_{}", rel.schema.name), attrs);

    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: std::collections::HashMap<Vec<Value>, Vec<&Tuple>> =
        std::collections::HashMap::new();
    for row in rel.iter() {
        let key: Vec<Value> = group_cols.iter().map(|&c| row[c].clone()).collect();
        let entry = groups.entry(key.clone()).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        entry.push(row);
    }

    let mut out = Relation::new(schema);
    for key in order {
        let members = &groups[&key];
        let mut row = key.clone();
        for (f, c) in aggs {
            let vals = members.iter().map(|t| &t[*c]);
            let v = match f {
                AggFn::Count => Value::Int(members.len() as i64),
                AggFn::Min => vals.min().cloned().unwrap_or(Value::Null),
                AggFn::Max => vals.max().cloned().unwrap_or(Value::Null),
                AggFn::Sum => {
                    Value::Float(vals.filter_map(|v| v.as_f64()).sum::<f64>())
                }
                AggFn::Avg => {
                    let nums: Vec<f64> = vals.filter_map(|v| v.as_f64()).collect();
                    if nums.is_empty() {
                        Value::Null
                    } else {
                        Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                    }
                }
            };
            row.push(v);
        }
        out.insert(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn courses() -> Relation {
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![
                Attribute::text("title"),
                Attribute::text("dept"),
                Attribute::int("size"),
            ],
        ));
        r.insert(vec![Value::str("db"), Value::str("cs"), Value::Int(120)]);
        r.insert(vec![Value::str("os"), Value::str("cs"), Value::Int(80)]);
        r.insert(vec![Value::str("greece"), Value::str("hist"), Value::Int(40)]);
        r
    }

    fn depts() -> Relation {
        let mut r = Relation::new(RelSchema::text("dept", &["code", "college"]));
        r.insert(vec![Value::str("cs"), Value::str("engineering")]);
        r.insert(vec![Value::str("hist"), Value::str("arts")]);
        r
    }

    #[test]
    fn select_and_project() {
        let big = select(&courses(), &Predicate::Gt(2, Value::Int(50)));
        assert_eq!(big.len(), 2);
        let titles = project(&big, &[0]);
        assert_eq!(titles.schema.arity(), 1);
        assert_eq!(titles.rows()[0][0], Value::str("db"));
    }

    #[test]
    fn hash_join_matches_on_key() {
        let j = hash_join(&courses(), &depts(), &[1], &[0]);
        assert_eq!(j.len(), 3);
        assert_eq!(j.schema.arity(), 5);
        // Every joined row has dept == code.
        for row in j.iter() {
            assert_eq!(row[1], row[3]);
        }
    }

    #[test]
    fn join_preserves_left_right_column_order_regardless_of_build_side() {
        // courses (3 rows) joins depts (2 rows): build side is depts.
        let j = hash_join(&courses(), &depts(), &[1], &[0]);
        assert_eq!(j.schema.attrs[0].name, "title");
        assert_eq!(j.schema.attrs[4].name, "college");
        // Swap so the build side is the left.
        let j2 = hash_join(&depts(), &courses(), &[0], &[1]);
        assert_eq!(j2.schema.attrs[0].name, "code");
        assert_eq!(j2.schema.attrs[2].name, "title");
        assert_eq!(j2.len(), 3);
    }

    #[test]
    fn cross_product() {
        let c = cross(&courses(), &depts());
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn union_and_distinct() {
        let u = union(&courses(), &courses());
        assert_eq!(u.len(), 6);
        assert_eq!(distinct(&u).len(), 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn union_incompatible_panics() {
        union(&courses(), &depts());
    }

    #[test]
    fn sort_orders_rows() {
        let s = sort_by(&courses(), &[2]);
        let sizes: Vec<i64> = s.iter().map(|r| r[2].as_int().unwrap()).collect();
        assert_eq!(sizes, vec![40, 80, 120]);
    }

    #[test]
    fn grouped_aggregation() {
        let g = aggregate(&courses(), &[1], &[(AggFn::Count, 0), (AggFn::Avg, 2)]);
        assert_eq!(g.len(), 2);
        let cs = g.iter().find(|r| r[0] == Value::str("cs")).unwrap();
        assert_eq!(cs[1], Value::Int(2));
        assert_eq!(cs[2], Value::Float(100.0));
    }

    #[test]
    fn aggregate_without_groups_is_single_row() {
        let g = aggregate(&courses(), &[], &[(AggFn::Sum, 2), (AggFn::Min, 2), (AggFn::Max, 2)]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.rows()[0][0], Value::Float(240.0));
        assert_eq!(g.rows()[0][1], Value::Int(40));
        assert_eq!(g.rows()[0][2], Value::Int(120));
    }

    #[test]
    fn col_eq_predicate() {
        let c = cross(&courses(), &depts());
        let matched = select(&c, &Predicate::ColEq(1, 3));
        assert_eq!(matched.len(), 3);
    }

    #[test]
    fn obs_variants_count_rows_without_changing_output() {
        let obs = Obs::enabled();
        let plain = select(&courses(), &Predicate::Gt(2, Value::Int(50)));
        let counted = select_obs(&courses(), &Predicate::Gt(2, Value::Int(50)), &obs);
        assert_eq!(plain.rows(), counted.rows());
        let m = obs.metrics().unwrap();
        assert_eq!(m.counter(names::STORAGE_SCAN_ROWS_READ), 3);
        assert_eq!(m.counter(names::STORAGE_SCAN_ROWS_KEPT), 2);

        let j = hash_join_obs(&courses(), &depts(), &[1], &[0], &obs);
        assert_eq!(j.rows(), hash_join(&courses(), &depts(), &[1], &[0]).rows());
        assert_eq!(m.counter(names::STORAGE_JOIN_ROWS_BUILT), 2); // depts is smaller
        assert_eq!(m.counter(names::STORAGE_JOIN_ROWS_PROBED), 3);
        assert_eq!(m.counter(names::STORAGE_JOIN_INDEX_HITS), 3);
        assert_eq!(m.counter(names::STORAGE_JOIN_ROWS_MATCHED), 3);
    }

    #[test]
    fn and_predicate() {
        let p = Predicate::And(vec![
            Predicate::Eq(1, Value::str("cs")),
            Predicate::Gt(2, Value::Int(100)),
        ]);
        assert_eq!(select(&courses(), &p).len(), 1);
    }
}
