//! Bench (in-repo harness) for E2: reformulation time vs chain length, with the
//! pruning heuristics on and off.

use revere_util::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revere_pdms::{ReformulateOptions, Reformulator};
use revere_query::{parse_query, GlavMapping};

fn chain_mappings(k: usize) -> Vec<GlavMapping> {
    (1..k)
        .map(|i| {
            GlavMapping::parse(
                format!("m{i}"),
                format!("P{}", i - 1),
                format!("P{i}"),
                &format!(
                    "m(T, E) :- P{}.course(T, E) ==> m(T, E) :- P{i}.course(T, E)",
                    i - 1
                ),
            )
            .expect("mapping parses")
        })
        .collect()
}

fn bench_reformulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("reformulation_chain");
    for k in [2usize, 4, 6, 8] {
        let mappings = chain_mappings(k);
        let q = parse_query(&format!("q(T, E) :- P{}.course(T, E)", k - 1)).unwrap();
        for pruning in [true, false] {
            let label = if pruning { "pruned" } else { "unpruned" };
            let reformulator = Reformulator::new(
                mappings.clone(),
                ReformulateOptions { pruning, ..Default::default() },
            );
            group.bench_with_input(BenchmarkId::new(label, k), &q, |b, q| {
                b.iter(|| reformulator.reformulate(std::hint::black_box(q)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reformulation);
criterion_main!(benches);
