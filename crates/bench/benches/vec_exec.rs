//! Bench (in-repo harness) for E18: the vectorized columnar engine vs the
//! row engine on the kernels the experiment gates — filtered scans and
//! hash self-joins over a synthetic fact table, timed both as the
//! bindings-only kernel (`eval_cq_bindings_mode`, what `report E18`
//! asserts on) and as the full evaluation including answer
//! materialization.

use revere_query::parse::parse_query;
use revere_query::plan::plan_cq;
use revere_query::{eval_cq_bag_profiled_obs_mode, eval_cq_bindings_mode, ExecMode};
use revere_storage::{Attribute, Catalog, RelSchema, Relation, Value};
use revere_util::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revere_util::obs::{Obs, SpanHandle};

/// `fact(key Int, tag Str, val Int)` — the E18 operator-sweep shape at
/// bench scale: 1024 join keys, 16 tags, 300 values.
fn fact_catalog(rows: usize) -> Catalog {
    let mut r = Relation::new(RelSchema::new(
        "fact",
        vec![Attribute::int("key"), Attribute::text("tag"), Attribute::int("val")],
    ));
    for i in 0..rows {
        r.insert(vec![
            Value::Int((i as i64 * 37) % 1024),
            Value::str(format!("t{}", i % 16)),
            Value::Int((i as i64 * 13) % 300),
        ]);
    }
    let mut catalog = Catalog::new();
    catalog.register(r);
    catalog.analyze();
    catalog
}

fn bench_vec_exec(c: &mut Criterion) {
    let mut group = c.benchmark_group("vec_exec");
    group.sample_size(10);
    let catalog = fact_catalog(50_000);
    let queries = [
        ("filter_scan", "q(K, V) :- fact(K, T, V), V < 30"),
        ("self_join", "q(K, W) :- fact(K, T, V), fact(V, U, W), W >= 280"),
    ];
    for (name, text) in queries {
        let q = parse_query(text).expect("bench query parses");
        let plan = plan_cq(&q, &catalog);
        for mode in [ExecMode::Row, ExecMode::Vectorized] {
            group.bench_with_input(
                BenchmarkId::new(format!("bindings/{name}"), mode),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        eval_cq_bindings_mode(
                            &q,
                            &plan,
                            std::hint::black_box(&catalog),
                            &Obs::disabled(),
                            &SpanHandle::none(),
                            mode,
                        )
                        .expect("bench query evaluates")
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("full/{name}"), mode),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        eval_cq_bag_profiled_obs_mode(
                            &q,
                            &plan,
                            std::hint::black_box(&catalog),
                            &Obs::disabled(),
                            &SpanHandle::none(),
                            mode,
                        )
                        .expect("bench query evaluates")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vec_exec);
criterion_main!(benches);
