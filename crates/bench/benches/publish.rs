//! Bench (in-repo harness) for E4: MANGROVE publish-pipeline throughput
//! (parse HTML → extract annotations → republish into the triple store)
//! and application render latency right after a publish.

use revere_util::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revere_mangrove::{CourseCalendar, Mangrove, MangroveSchema, PhoneDirectory};
use revere_workload::PageGenerator;

fn bench_publish(c: &mut Criterion) {
    let pages = PageGenerator { seed: 4, courses: 40, people: 40, ..Default::default() }.generate();
    let mut group = c.benchmark_group("mangrove_publish");
    group.bench_function("publish_one_page", |b| {
        let mut m = Mangrove::new(MangroveSchema::department());
        let mut i = 0usize;
        b.iter(|| {
            let p = &pages[i % pages.len()];
            i += 1;
            m.publish(&p.url, std::hint::black_box(&p.html))
        });
    });
    for site in [20usize, 80] {
        group.bench_with_input(BenchmarkId::new("publish_site", site), &site, |b, &site| {
            b.iter(|| {
                let mut m = Mangrove::new(MangroveSchema::department());
                for p in pages.iter().take(site) {
                    m.publish(&p.url, &p.html);
                }
                m.store.len()
            });
        });
    }
    group.finish();

    // Render latency of the instant-gratification views over a loaded store.
    let mut m = Mangrove::new(MangroveSchema::department());
    for p in &pages {
        m.publish(&p.url, &p.html);
    }
    let mut group = c.benchmark_group("instant_gratification_render");
    group.bench_function("course_calendar", |b| {
        b.iter(|| CourseCalendar::default().render(std::hint::black_box(&m.store)))
    });
    group.bench_function("phone_directory", |b| {
        b.iter(|| PhoneDirectory::default().render(std::hint::black_box(&m.store)))
    });
    group.finish();
}

criterion_group!(benches, bench_publish);
criterion_main!(benches);
