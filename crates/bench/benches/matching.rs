//! Bench (in-repo harness) for E6/E7: classifier training, schema matching and
//! DesignAdvisor ranking over generated universities.

use revere_util::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revere_corpus::{Corpus, CorpusEntry, DesignAdvisor, MatchingAdvisor, MultiStrategyClassifier};
use revere_storage::Catalog;
use revere_workload::UniversityGenerator;

fn corpus_of(n: usize) -> (Corpus, Vec<revere_workload::University>) {
    let gen = UniversityGenerator { seed: 6, rename_prob: 0.6, rows_per_relation: 10, ..Default::default() };
    let mut us = gen.generate(n + 2);
    let test = us.split_off(n);
    let mut corpus = Corpus::new();
    for u in &us {
        let mut e = CorpusEntry::schema_only(u.schema.clone());
        e.data = u.data.clone();
        e.labels = u.truth.attributes.clone().into_iter().collect();
        corpus.add(e);
    }
    (corpus, test)
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_tools");
    group.sample_size(10);
    for n in [4usize, 12] {
        let (corpus, test) = corpus_of(n);
        group.bench_with_input(BenchmarkId::new("train_classifier", n), &corpus, |b, corp| {
            b.iter(|| MultiStrategyClassifier::train(std::hint::black_box(corp)))
        });
        let clf = MultiStrategyClassifier::train(&corpus);
        let matcher = MatchingAdvisor::new(clf.clone());
        let (a, bb) = (&test[0], &test[1]);
        group.bench_with_input(BenchmarkId::new("match_schema_pair", n), &matcher, |b, m| {
            b.iter(|| m.match_schemas(&a.schema, &a.data, &bb.schema, &bb.data))
        });
        let advisor = DesignAdvisor::new(&corpus, matcher);
        let fragment = &a.schema;
        group.bench_with_input(BenchmarkId::new("design_advisor_rank", n), &advisor, |b, adv| {
            b.iter(|| adv.rank(&corpus, fragment, &Catalog::new()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
