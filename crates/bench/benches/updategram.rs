//! Bench (in-repo harness) for E8: incremental updategram maintenance vs full
//! view recomputation across delta sizes.

use revere_util::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revere_bench::fixtures::big_relation;
use revere_pdms::{maintain, MaintenanceChoice, MaterializedView, Updategram};
use revere_query::parse_query;
use revere_storage::{Catalog, Value};

const BASE: usize = 20_000;
const DOMAIN: i64 = 500;

fn setup() -> (Catalog, MaterializedView) {
    let mut c = Catalog::new();
    c.register(big_relation("r", BASE, DOMAIN));
    c.register(big_relation("s", BASE / 5, DOMAIN));
    let mut v = MaterializedView::new("v", parse_query("v(A, C) :- r(A, B), s(B, C)").unwrap());
    v.refresh_full(&c).unwrap();
    (c, v)
}

fn gram(delta: usize) -> Updategram {
    Updategram {
        relation: "r".into(),
        insert: (0..delta)
            .map(|i| vec![Value::Int((i as i64 * 7) % DOMAIN), Value::Int((i as i64 * 3) % DOMAIN)])
            .collect(),
        delete: Vec::new(),
    }
}

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_maintenance");
    group.sample_size(10);
    for delta in [10usize, 200, 4000] {
        group.bench_with_input(BenchmarkId::new("incremental", delta), &delta, |b, &d| {
            b.iter_batched(
                || (setup(), gram(d)),
                |((mut cat, mut view), g)| {
                    maintain(&mut cat, &mut view, &[g], Some(MaintenanceChoice::Incremental))
                        .unwrap()
                },
                revere_util::criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("recompute", delta), &delta, |b, &d| {
            b.iter_batched(
                || (setup(), gram(d)),
                |((mut cat, mut view), g)| {
                    maintain(&mut cat, &mut view, &[g], Some(MaintenanceChoice::Recompute))
                        .unwrap()
                },
                revere_util::criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
