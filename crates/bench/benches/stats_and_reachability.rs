//! Bench (in-repo harness) for E1/E9: full-network query answering across
//! topologies, and corpus statistics computation scaling.

use revere_util::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revere_bench::fixtures::course_network;
use revere_corpus::{Corpus, CorpusEntry, CorpusStats};
use revere_workload::{TopologyKind, UniversityGenerator};

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdms_query");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        for (kind, label) in [
            (TopologyKind::Chain, "chain"),
            (TopologyKind::Star, "star"),
            (TopologyKind::Random { extra: 2 }, "random"),
        ] {
            let net = course_network(kind, n, 5, 7);
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &net,
                |b, net| {
                    b.iter(|| {
                        net.query_str("P0", "q(T, E) :- P0.course(T, E)")
                            .expect("query runs")
                            .answers
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_stats");
    group.sample_size(10);
    for n in [20usize, 100] {
        let gen = UniversityGenerator { seed: 9, rows_per_relation: 5, ..Default::default() };
        let mut corpus = Corpus::new();
        for u in gen.generate(n) {
            let mut e = CorpusEntry::schema_only(u.schema.clone());
            e.data = u.data.clone();
            corpus.add(e);
        }
        group.bench_with_input(BenchmarkId::new("compute", n), &corpus, |b, corp| {
            b.iter(|| CorpusStats::compute(std::hint::black_box(corp)))
        });
        let stats = CorpusStats::compute(&corpus);
        group.bench_with_input(BenchmarkId::new("similar_names", n), &stats, |b, s| {
            b.iter(|| s.similar_names("instructor", 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reachability, bench_stats);
criterion_main!(benches);
