//! E16: durability — exactly-once updategram delivery across peer crashes.
//!
//! §3.1 lets peers "join or leave at will"; PR 2 made *transient* faults
//! survivable and this experiment stresses the stronger failure mode:
//! peers that crash mid-propagation and restart from stable storage. A
//! source peer streams seeded updategrams to a target replica over a
//! lossy [`ReliableLink`]; both ends journal to a [`PeerDisk`] and
//! checkpoint periodically. A kill-at-tick schedule (drawn from the
//! [`FaultPlan`]'s crash events) crashes each side mid-stream; the
//! harness recovers it from disk and carries on. The invariant — checked
//! here for every seed and gated in `scripts/verify.sh` via
//! `REVERE_CRASH_SEEDS` — is that the converged catalogs (rows *and*
//! learned join statistics) are **byte-identical** to a crash-free run
//! of the same seed, with zero double-applies. The table reports what
//! that costs: recovery latency, replayed suffix length, and the
//! stable-storage amplification of image + log over raw state.

use crate::table::Table;
use revere_pdms::durable::{checkpoint, recover, PeerDisk};
use revere_pdms::fault::{FaultPlan, FaultSpec, RetryPolicy};
use revere_pdms::propagation::{GramInbox, ReliableLink};
use revere_pdms::updategram::Updategram;
use revere_pdms::views::MaterializedView;
use revere_pdms::SequencedGram;
use revere_query::parse_query;
use revere_storage::wal::encode_catalog;
use revere_storage::{Catalog, RelSchema, Value};
use std::time::Instant;

/// The crash seeds E16 sweeps (the `REVERE_CRASH_SEEDS` default).
pub const CRASH_SEEDS: [u64; 3] = [7, 42, 1003];

/// Propagation rounds (= simulation ticks) per run.
pub const ROUNDS: u64 = 48;

/// Checkpoint cadence, in ticks.
pub const CHECKPOINT_EVERY: u64 = 8;

const SRC_REL: &str = "Src.course";
const DST_REL: &str = "Dst.course";
const AREAS: [&str; 3] = ["systems", "ai", "theory"];

/// One seed's crash run, compared against its crash-free twin.
pub struct DurabilityPoint {
    /// The seed.
    pub seed: u64,
    /// Crash/restart events executed (both sides).
    pub crashes: usize,
    /// Grams the source sealed.
    pub grams: usize,
    /// Distinct grams the target applied (must equal `grams`).
    pub applied: usize,
    /// Duplicate deliveries the target's inbox absorbed.
    pub duplicates: usize,
    /// Longest post-image suffix any single recovery replayed.
    pub replay_max: usize,
    /// Total wall-clock spent in `recover` across all crashes, in µs.
    pub recovery_us: u128,
    /// Peak change-log size observed, in bytes.
    pub log_peak: usize,
    /// Final stable footprint (image + log, both peers), in bytes.
    pub stable_bytes: usize,
    /// Final raw state size (both catalog blobs), in bytes.
    pub state_bytes: usize,
    /// Byte-identity of both final catalogs vs the crash-free run.
    pub converged: bool,
}

impl DurabilityPoint {
    /// Stable-storage amplification: image + log over raw state.
    pub fn amplification(&self) -> f64 {
        self.stable_bytes as f64 / self.state_bytes.max(1) as f64
    }
}

/// Final state of one run (crashing or not): canonical catalog bytes for
/// both peers plus the delivery counters.
struct RunOutcome {
    src_bytes: Vec<u8>,
    dst_bytes: Vec<u8>,
    grams: usize,
    applied: usize,
    duplicates: usize,
    crashes: usize,
    replay_max: usize,
    recovery_us: u128,
    log_peak: usize,
    stable_bytes: usize,
    state_bytes: usize,
}

fn course_schema(rel: &str) -> RelSchema {
    RelSchema::text(rel, &["title", "area"])
}

fn row(tick: u64, seed: u64) -> Vec<Value> {
    vec![
        Value::str(format!("c{tick}")),
        Value::str(AREAS[((seed.wrapping_add(tick)) % AREAS.len() as u64) as usize]),
    ]
}

/// The seeded gram for `tick`: one insert, plus (every 4th tick) a
/// delete of the row inserted four ticks earlier — so the log carries
/// both polarities and replicas must converge on a churning multiset.
fn gram_for(tick: u64, seed: u64) -> Updategram {
    let mut g = Updategram::inserts(DST_REL, vec![row(tick, seed)]);
    if tick % 4 == 3 && tick >= 4 {
        g.delete.push(row(tick - 4, seed));
    }
    g
}

fn replica_view(catalog: &Catalog) -> MaterializedView {
    let q = parse_query(&format!("v(T) :- {DST_REL}(T, A)")).expect("view query parses");
    let mut v = MaterializedView::new("v", q);
    v.refresh_full(catalog).expect("replica view refreshes");
    v
}

/// The lossy-but-live wire weather for `seed` (no outages — crashes are
/// injected by the kill-at-tick schedule, not the per-message dice).
fn weather(seed: u64) -> FaultPlan {
    FaultPlan::new(FaultSpec {
        seed,
        drop_prob: 0.2,
        flaky_prob: 0.1,
        duplicate_prob: 0.1,
        ..FaultSpec::default()
    })
}

/// The kill-at-tick schedule for `seed`: one receiver crash and one
/// sender crash, both mid-stream, read back through the fault plan's
/// crash events so E16 exercises the same machinery tests use.
fn crash_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(
        FaultSpec::default()
            .with_crash("Dst", 10 + seed % 7)
            .with_crash("Src", 25 + seed % 9),
    )
}

/// Run one seeded propagation stream. `crashing` selects whether the
/// crash schedule fires; everything else is identical, which is what
/// makes the byte-identity comparison meaningful.
fn run(seed: u64, crashing: bool) -> RunOutcome {
    let plan = weather(seed);
    let crash_schedule = crash_plan(seed);
    let crash_dst = crash_schedule.crash_tick("Dst").expect("Dst crash scheduled");
    let crash_src = crash_schedule.crash_tick("Src").expect("Src crash scheduled");

    let src_disk = PeerDisk::new();
    let dst_disk = PeerDisk::new();

    let mut src_cat = Catalog::new();
    src_cat.create(course_schema(SRC_REL));
    src_cat.attach_journal(src_disk.journal());
    checkpoint(&src_disk, &mut src_cat, &[], &[]);

    let mut dst_cat = Catalog::new();
    dst_cat.create(course_schema(DST_REL));
    dst_cat.attach_journal(dst_disk.journal());
    checkpoint(&dst_disk, &mut dst_cat, &[], &[]);

    let mut link = ReliableLink::durable("Dst", plan.clone(), src_disk.journal());
    link.retry = RetryPolicy::none();
    let mut inbox = GramInbox::durable("Src", dst_disk.journal());
    let mut view = replica_view(&dst_cat);

    let mut pending: Vec<SequencedGram> = Vec::new();
    let mut crashes = 0usize;
    let mut replay_max = 0usize;
    let mut recovery_us = 0u128;
    let mut log_peak = 0usize;

    let ship_pending = |pending: &mut Vec<SequencedGram>,
                            link: &mut ReliableLink,
                            inbox: &mut GramInbox,
                            dst_cat: &mut Catalog,
                            view: &mut MaterializedView| {
        let mut still = Vec::new();
        for g in pending.drain(..) {
            let d = link.ship(&g, inbox, dst_cat, view).expect("ship never eval-errors");
            if !d.acknowledged {
                still.push(g);
            }
        }
        *pending = still;
    };

    for tick in 0..ROUNDS {
        if crashing && tick == crash_dst {
            // Receiver crash: the in-memory replica, inbox, and view are
            // gone; stable storage is everything.
            drop(std::mem::take(&mut dst_cat));
            let start = Instant::now();
            let rec = recover(&dst_disk).expect("receiver recovers");
            recovery_us += start.elapsed().as_micros();
            replay_max = replay_max.max(rec.report.replayed);
            crashes += 1;
            dst_cat = rec.catalog;
            inbox = rec
                .inboxes
                .into_iter()
                .find(|(l, _)| l == "Src")
                .map(|(_, i)| i)
                .unwrap_or_else(|| GramInbox::durable("Src", dst_disk.journal()));
            view = replica_view(&dst_cat);
        }
        if crashing && tick == crash_src {
            // Sender crash: the link's in-flight queue dies with it; the
            // outbox resumes from journaled seals and acks.
            drop(std::mem::take(&mut src_cat));
            let start = Instant::now();
            let rec = recover(&src_disk).expect("sender recovers");
            recovery_us += start.elapsed().as_micros();
            replay_max = replay_max.max(rec.report.replayed);
            crashes += 1;
            src_cat = rec.catalog;
            let resume = rec.outboxes.get("Dst").cloned().unwrap_or_default();
            link = resume.resume("Dst", plan.clone(), &src_disk);
            link.retry = RetryPolicy::none();
            pending = resume.pending();
        }

        // Source-side change + the learned statistic that must survive.
        let gram = gram_for(tick, seed);
        for r in &gram.insert {
            src_cat.insert(SRC_REL, r.clone());
        }
        for r in &gram.delete {
            src_cat.delete(SRC_REL, r);
        }
        src_cat.note_join_overlap(
            SRC_REL,
            0,
            DST_REL,
            0,
            ((seed + tick) % 9 + 1) as f64 / 10.0,
        );
        pending.push(link.seal(gram));
        ship_pending(&mut pending, &mut link, &mut inbox, &mut dst_cat, &mut view);

        if tick % CHECKPOINT_EVERY == CHECKPOINT_EVERY - 1 {
            checkpoint(&src_disk, &mut src_cat, &[], &[&link]);
            checkpoint(&dst_disk, &mut dst_cat, &[&inbox], &[]);
        }
        log_peak = log_peak.max(src_disk.log_len()).max(dst_disk.log_len());
    }

    // Drain: keep re-shipping until every gram is acknowledged (the
    // weather is lossy but live, so this converges).
    let mut rounds = 0;
    while !pending.is_empty() {
        ship_pending(&mut pending, &mut link, &mut inbox, &mut dst_cat, &mut view);
        rounds += 1;
        assert!(rounds < 10_000, "lossy-but-live weather must drain");
    }

    let src_bytes = encode_catalog(&src_cat, 0);
    let dst_bytes = encode_catalog(&dst_cat, 0);
    let state_bytes = src_bytes.len() + dst_bytes.len();
    RunOutcome {
        grams: link.next_seal_id() as usize,
        applied: inbox.applied_count(),
        duplicates: inbox.duplicates_ignored,
        crashes,
        replay_max,
        recovery_us,
        log_peak,
        stable_bytes: src_disk.stable_len() + dst_disk.stable_len(),
        state_bytes,
        src_bytes,
        dst_bytes,
    }
}

/// Run the sweep: for each seed, a crash-free twin and a crashing run,
/// compared byte-for-byte.
pub fn durability_sweep() -> Vec<DurabilityPoint> {
    durability_sweep_seeds(&CRASH_SEEDS)
}

/// The sweep over explicit seeds (the verify gate passes
/// `REVERE_CRASH_SEEDS` through here).
pub fn durability_sweep_seeds(seeds: &[u64]) -> Vec<DurabilityPoint> {
    seeds
        .iter()
        .map(|&seed| {
            let baseline = run(seed, false);
            let crashed = run(seed, true);
            DurabilityPoint {
                seed,
                crashes: crashed.crashes,
                grams: crashed.grams,
                applied: crashed.applied,
                duplicates: crashed.duplicates,
                replay_max: crashed.replay_max,
                recovery_us: crashed.recovery_us,
                log_peak: crashed.log_peak,
                stable_bytes: crashed.stable_bytes,
                state_bytes: crashed.state_bytes,
                converged: crashed.src_bytes == baseline.src_bytes
                    && crashed.dst_bytes == baseline.dst_bytes
                    && crashed.applied == baseline.applied,
            }
        })
        .collect()
}

/// E16 — crash recovery (§3.1: peers leave *and come back*).
pub fn e16_durability() -> Table {
    let mut t = Table::new(
        "E16: exactly-once delivery across peer crashes (durability, §3.1)",
        &[
            "seed", "crashes", "grams", "applied", "dups absorbed", "replay max",
            "recovery us", "log peak B", "stable B", "state B", "amp x", "converged",
        ],
    );
    for p in durability_sweep() {
        t.row(vec![
            p.seed.to_string(),
            p.crashes.to_string(),
            p.grams.to_string(),
            p.applied.to_string(),
            p.duplicates.to_string(),
            p.replay_max.to_string(),
            p.recovery_us.to_string(),
            p.log_peak.to_string(),
            p.stable_bytes.to_string(),
            p.state_bytes.to_string(),
            format!("{:.2}", p.amplification()),
            p.converged.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_converges_byte_identically_with_exactly_once_delivery() {
        for p in durability_sweep() {
            assert!(p.converged, "seed {}: crash run diverged from crash-free twin", p.seed);
            assert_eq!(p.crashes, 2, "seed {}: both scheduled crashes fired", p.seed);
            assert_eq!(
                p.applied, p.grams,
                "seed {}: every gram applied exactly once",
                p.seed
            );
            assert!(p.duplicates > 0, "seed {}: lossy weather exercised dedup", p.seed);
        }
    }

    #[test]
    fn recovery_replays_a_suffix_not_the_full_history() {
        for p in durability_sweep() {
            // A full-history replay would be ~ROUNDS journaled mutations
            // (each tick journals an insert + a join observation + a seal
            // at minimum). The checkpoint cadence bounds the suffix.
            let full_history = (ROUNDS * 2) as usize;
            assert!(
                p.replay_max < full_history,
                "seed {}: replayed {} records, smells like full history ({}+)",
                p.seed,
                p.replay_max,
                full_history
            );
        }
    }

    #[test]
    fn checkpoints_keep_the_log_bounded() {
        for p in durability_sweep() {
            // Unbounded logging would retain every frame ever written;
            // with truncation the peak stays near one checkpoint window.
            assert!(
                p.log_peak < p.stable_bytes.max(1) * 4,
                "seed {}: log peak {} vs stable {}",
                p.seed,
                p.log_peak,
                p.stable_bytes
            );
            assert!(p.amplification() < 16.0, "seed {}: amplification blew up", p.seed);
        }
    }
}
