//! E4–E5: the MANGROVE experiments.

use crate::table::{f2, ms, Table};
use revere_mangrove::clean::resolve;
use revere_mangrove::{CleaningPolicy, CrawlBaseline, Mangrove, MangroveSchema};
use revere_storage::Value;
use revere_workload::{DirtSpec, PageGenerator};
use std::time::Instant;

/// E4 — §2.2: instant gratification. Publish throughput, and freshness of
/// MANGROVE's publish-time ingestion against periodic crawls.
pub fn e4_instant_gratification() -> Table {
    let mut t = Table::new(
        "E4: instant gratification vs periodic crawl (§2.2)",
        &[
            "system", "crawl interval", "pages", "triples", "ingest time ms",
            "pages/s", "mean staleness (ticks)",
        ],
    );
    let gen = PageGenerator { seed: 4, courses: 120, people: 120, ..Default::default() };
    let pages = gen.generate();

    // MANGROVE: ingest at publish time.
    let mut m = Mangrove::new(MangroveSchema::department());
    let start = Instant::now();
    for p in &pages {
        m.publish(&p.url, &p.html);
    }
    let elapsed = start.elapsed();
    t.row(vec![
        "MANGROVE".into(),
        "-".into(),
        pages.len().to_string(),
        m.store.len().to_string(),
        ms(elapsed),
        f2(pages.len() as f64 / elapsed.as_secs_f64()),
        "0.00".into(),
    ]);

    // Crawl baseline: publishes land uniformly over time; a publish at
    // phase p waits (interval - p) ticks. Simulate one publish per tick.
    for &interval in &[10u64, 100, 1000] {
        let mut crawl = CrawlBaseline::new(MangroveSchema::department(), interval);
        let mut total_staleness = 0u64;
        let start = Instant::now();
        for p in &pages {
            total_staleness += crawl.staleness_of_publish_now();
            crawl.author_publish(&p.url, &p.html);
            crawl.tick();
        }
        // Drain the tail so everything is ingested.
        while !crawl.now().is_multiple_of(interval) {
            crawl.tick();
        }
        let elapsed = start.elapsed();
        t.row(vec![
            "crawl".into(),
            interval.to_string(),
            pages.len().to_string(),
            crawl.store.len().to_string(),
            ms(elapsed),
            f2(pages.len() as f64 / elapsed.as_secs_f64()),
            f2(total_staleness as f64 / pages.len() as f64),
        ]);
    }
    t
}

/// E5 — §2.3: deferred integrity constraints. Accuracy of each cleaning
/// policy on the phone-number task under increasing dirt.
pub fn e5_cleaning_policies() -> Table {
    let mut t = Table::new(
        "E5: application-side cleaning policies under dirty data (§2.3)",
        &[
            "dirty rate", "conflicted people", "own-source acc", "majority acc",
            "freshest acc", "take-all avg values",
        ],
    );
    for &rate in &[0.0f64, 0.1, 0.25, 0.5] {
        let gen = PageGenerator {
            seed: 5,
            courses: 0,
            people: 40,
            dirt: DirtSpec { conflict_prob: rate, secondary_pages: 3 },
        };
        let pages = gen.generate();
        let mut m = Mangrove::new(MangroveSchema::department());
        for p in &pages {
            m.publish(&p.url, &p.html);
        }
        // Ground truth: each person's phone, read from their home page
        // (the authoritative source; directories may restate or lie).
        let mut subjects: Vec<(String, Value)> = Vec::new();
        for page in pages.iter().filter(|p| p.url.contains("/~")) {
            for (s, pred, v) in &page.truth {
                if pred == "person.phone" && !subjects.iter().any(|(s2, _)| s2 == s) {
                    subjects.push((s.clone(), v.clone()));
                }
            }
        }
        let conflicted = subjects
            .iter()
            .filter(|(s, v)| {
                m.store
                    .query((Some(s), Some("person.phone"), None))
                    .iter()
                    .any(|tr| tr.object != *v)
            })
            .count();
        let acc = |policy: &CleaningPolicy| -> f64 {
            let right = subjects
                .iter()
                .filter(|(s, v)| {
                    resolve(&m.store, s, "person.phone", policy).first() == Some(v)
                })
                .count();
            right as f64 / subjects.len() as f64
        };
        let take_all_avg: f64 = subjects
            .iter()
            .map(|(s, _)| resolve(&m.store, s, "person.phone", &CleaningPolicy::TakeAll).len())
            .sum::<usize>() as f64
            / subjects.len() as f64;
        t.row(vec![
            f2(rate),
            conflicted.to_string(),
            f2(acc(&CleaningPolicy::PreferOwnSource)),
            f2(acc(&CleaningPolicy::Majority)),
            f2(acc(&CleaningPolicy::Freshest)),
            f2(take_all_avg),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_mangrove_is_fresher_than_every_crawl() {
        let t = e4_instant_gratification();
        let mangrove_staleness: f64 = t.rows[0][6].parse().unwrap();
        assert_eq!(mangrove_staleness, 0.0);
        for r in &t.rows[1..] {
            let staleness: f64 = r[6].parse().unwrap();
            let interval: f64 = r[1].parse().unwrap();
            assert!(staleness > 0.0);
            // Mean staleness ~ interval/2 under uniform publishing.
            assert!(staleness <= interval, "{r:?}");
            // Nothing lost: same triple count as pages dictate.
            assert_eq!(r[3], t.rows[0][3], "{r:?}");
        }
    }

    #[test]
    fn e5_own_source_dominates_majority() {
        let t = e5_cleaning_policies();
        for r in &t.rows {
            let own: f64 = r[2].parse().unwrap();
            let majority: f64 = r[3].parse().unwrap();
            assert!(own >= majority - 1e-9, "{r:?}");
            assert!((own - 1.0).abs() < 1e-9, "own-source should stay perfect: {r:?}");
        }
        // At zero dirt every policy is perfect.
        let clean = &t.rows[0];
        assert_eq!(clean[3], "1.00");
        assert_eq!(clean[4], "1.00");
    }
}
