//! E12: chaos — answer completeness and message overhead vs peer failure.
//!
//! §3.1 claims peers "can join and leave at will" without taking the
//! system down. E12 operationalizes that availability claim: a seeded
//! [`FaultPlan`] downs a growing fraction of a 16-peer random overlay
//! (plus message drops, flaky responses, and latency scaled to the same
//! dial), and we measure what fraction of the fault-free answer survives,
//! what the completeness report blames, and what the retries cost in
//! messages. Everything is a pure function of the seed: rerunning the
//! table reproduces it bit for bit.

use crate::fixtures::network_from_topology;
use crate::table::Table;
use revere_pdms::fault::{FaultPlan, FaultSpec};
use revere_workload::{Topology, TopologyKind};
use std::collections::BTreeSet;

/// The failure levels E12 sweeps.
pub const FAILURE_RATES: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.35, 0.5];

/// Seed for the chaos sweep (the topology uses its own fixed seed so the
/// graph is identical across rows).
pub const CHAOS_SEED: u64 = 1003;

/// One row of the sweep, kept structured for the tests.
pub struct ChaosPoint {
    /// The failure dial.
    pub rate: f64,
    /// Peers the plan downed (of 16).
    pub peers_down: usize,
    /// Deeper structural bound: peers P0 could still reach if the downed
    /// peers had *departed for good*, taking their mapping edges with
    /// them. Transient outages are milder — composed mappings survive, so
    /// an up peer "behind" a down one is still fetched directly.
    pub graph_reachable: usize,
    /// Answer rows returned.
    pub answers: usize,
    /// Answer rows of the fault-free run.
    pub baseline_answers: usize,
    /// Disjuncts dropped / total.
    pub dropped: usize,
    /// Total disjuncts.
    pub total: usize,
    /// Peers named unreachable in the report.
    pub unreachable: usize,
    /// Messages spent.
    pub messages: usize,
    /// Messages of the fault-free run.
    pub baseline_messages: usize,
    /// Retry attempts spent.
    pub retries: usize,
}

/// Run the sweep and return the structured points.
pub fn chaos_sweep() -> Vec<ChaosPoint> {
    let n = 16usize;
    let topology = Topology::generate(TopologyKind::Random { extra: 2 }, n, 7);
    let mut points = Vec::new();
    let baseline = {
        let net = network_from_topology(&topology, 2);
        net.query_str("P0", "q(T, E) :- P0.course(T, E)").expect("baseline query runs")
    };
    for &rate in &FAILURE_RATES {
        let mut net = network_from_topology(&topology, 2);
        net.faults = FaultPlan::new(FaultSpec::chaos(CHAOS_SEED, rate));
        let down: BTreeSet<usize> =
            (0..n).filter(|i| net.faults.is_down(&format!("P{i}"))).collect();
        let out = net.query_str("P0", "q(T, E) :- P0.course(T, E)").expect("chaos query runs");
        points.push(ChaosPoint {
            rate,
            peers_down: down.len(),
            graph_reachable: topology.reachable_avoiding(0, &down),
            answers: out.answers.len(),
            baseline_answers: baseline.answers.len(),
            dropped: out.completeness.disjuncts_dropped,
            total: out.completeness.disjuncts_total,
            unreachable: out.completeness.peers_unreachable.len(),
            messages: out.messages,
            baseline_messages: baseline.messages,
            retries: out.completeness.retries,
        });
    }
    points
}

/// E12 — availability under chaos (§3.1: peers "join and leave at will").
pub fn e12_chaos() -> Table {
    let mut t = Table::new(
        "E12: answer completeness & message overhead vs peer failure (chaos, §3.1)",
        &[
            "fail rate", "peers down", "reach if departed", "answers", "of fault-free",
            "disjuncts dropped", "unreachable", "messages", "overhead x", "retries",
        ],
    );
    for p in chaos_sweep() {
        t.row(vec![
            format!("{:.2}", p.rate),
            format!("{}/16", p.peers_down),
            p.graph_reachable.to_string(),
            p.answers.to_string(),
            format!("{:.2}", p.answers as f64 / p.baseline_answers.max(1) as f64),
            format!("{}/{}", p.dropped, p.total),
            p.unreachable.to_string(),
            p.messages.to_string(),
            format!("{:.2}", p.messages as f64 / p.baseline_messages.max(1) as f64),
            p.retries.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_row_is_the_fault_free_baseline() {
        let points = chaos_sweep();
        let p0 = &points[0];
        assert_eq!(p0.rate, 0.0);
        assert_eq!(p0.peers_down, 0);
        assert_eq!(p0.answers, p0.baseline_answers);
        assert_eq!(p0.messages, p0.baseline_messages);
        assert_eq!(p0.dropped, 0);
        assert_eq!(p0.retries, 0);
    }

    #[test]
    fn completeness_degrades_monotonically_with_the_dial() {
        // Same seed, rising rate: every fault die is fixed and only the
        // thresholds move, so the failed set only grows.
        let points = chaos_sweep();
        for w in points.windows(2) {
            assert!(w[1].peers_down >= w[0].peers_down);
            assert!(w[1].answers <= w[0].answers, "answers grew with failure rate");
            assert!(w[1].dropped >= w[0].dropped);
        }
        // The sweep actually reaches degraded territory.
        assert!(points.last().unwrap().answers < points[0].answers);
        assert!(points.last().unwrap().unreachable > 0);
    }

    #[test]
    fn sweep_is_reproducible() {
        let a = e12_chaos();
        let b = e12_chaos();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn answers_bounded_by_up_peers_and_above_departed_bound() {
        // Fetches go straight to owners, so 2 rows per *up* peer is the
        // ceiling; and transient outages are never worse than outright
        // departure (which also takes mapping edges), so the departed
        // bound never exceeds the up-peer count.
        for p in chaos_sweep() {
            let up = 16 - p.peers_down;
            assert!(p.answers <= 2 * up, "rate {}: {} answers, {up} up", p.rate, p.answers);
            assert!(p.graph_reachable <= up, "rate {}", p.rate);
        }
    }
}
