//! E11 (extension): data placement — materializing hot views at asking
//! peers (§3.1.2, \[21\]).

use crate::fixtures::course_network;
use crate::table::{f2, Table};
use revere_pdms::placement::{answer_with_plan, plan_placement, WorkloadEntry};
use revere_query::parse_query;
use revere_workload::TopologyKind;

/// E11 — §3.1.2: "materialize the best views at each peer to allow
/// answering queries most efficiently." Sweep the per-peer storage budget
/// and measure the messages a fixed workload costs with and without the
/// placement plan.
pub fn e11_placement() -> Table {
    let mut t = Table::new(
        "E11 (ext): data placement benefit vs storage budget (\u{a7}3.1.2)",
        &[
            "budget (tuples/peer)", "views placed", "tuples stored",
            "workload messages (no plan)", "workload messages (plan)", "saving",
        ],
    );
    let n = 8;
    let net = course_network(TopologyKind::Chain, n, 20, 7);
    // Workload: three peers ask the hot whole-network query with
    // different frequencies, one peer asks a selective query.
    let workload: Vec<WorkloadEntry> = vec![
        WorkloadEntry {
            peer: "P7".into(),
            query: parse_query("q(T, E) :- P7.course(T, E)").unwrap(),
            frequency: 10.0,
        },
        WorkloadEntry {
            peer: "P4".into(),
            query: parse_query("q(T, E) :- P4.course(T, E)").unwrap(),
            frequency: 5.0,
        },
        WorkloadEntry {
            peer: "P0".into(),
            query: parse_query("q(T, E) :- P0.course(T, E), E > 100").unwrap(),
            frequency: 2.0,
        },
    ];
    // Baseline cost: weighted messages without any plan.
    let baseline: f64 = workload
        .iter()
        .map(|w| {
            w.frequency * net.query(&w.peer, &w.query).map(|o| o.messages).unwrap_or(0) as f64
        })
        .sum();
    for &budget in &[0usize, 100, 200, 100_000] {
        let plan = plan_placement(&net, &workload, budget);
        let planned: f64 = workload
            .iter()
            .map(|w| {
                let (_, messages) =
                    answer_with_plan(&net, &plan, &w.peer, &w.query).expect("query runs");
                w.frequency * messages as f64
            })
            .sum();
        let stored: usize = plan.usage_by_peer().values().sum();
        t.row(vec![
            budget.to_string(),
            plan.placements.len().to_string(),
            stored.to_string(),
            f2(baseline),
            f2(planned),
            format!("{:.0}%", 100.0 * (baseline - planned) / baseline.max(1e-9)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_saving_grows_with_budget() {
        let t = e11_placement();
        let savings: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[5].trim_end_matches('%').parse().unwrap())
            .collect();
        assert_eq!(savings[0], 0.0, "zero budget saves nothing");
        assert!(
            savings.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "saving not monotone: {savings:?}"
        );
        let last = *savings.last().unwrap();
        assert!(last >= 99.0, "unbounded budget should eliminate messages, saved {last}%");
        // Answers stay correct either way (checked in placement unit tests);
        // here assert the plan actually placed all three views at the top.
        let views: usize = t.rows.last().unwrap()[1].parse().unwrap();
        assert_eq!(views, 3);
    }
}
