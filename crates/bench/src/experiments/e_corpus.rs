//! E6, E7, E9, E10: the statistics-over-structures experiments.

use crate::table::{f2, ms, Table};
use revere_corpus::{
    Corpus, CorpusEntry, CorpusStats, DesignAdvisor, Learner, MatchQuality, MatchingAdvisor,
    MultiStrategyClassifier,
};
use revere_storage::{Catalog, DbSchema, RelSchema};
use revere_workload::{University, UniversityGenerator};
use std::time::Instant;

/// Build a labeled corpus from the first `train` of `total` generated
/// universities; return (corpus, held-out universities).
fn split_corpus(
    seed: u64,
    total: usize,
    train: usize,
    rename_prob: f64,
    italian: f64,
) -> (Corpus, Vec<University>) {
    let gen = UniversityGenerator {
        seed,
        rename_prob,
        italian_fraction: italian,
        rows_per_relation: 12,
        ..Default::default()
    };
    let mut universities = gen.generate(total);
    let test = universities.split_off(train);
    let mut corpus = Corpus::new();
    for u in &universities {
        let mut e = CorpusEntry::schema_only(u.schema.clone());
        e.data = u.data.clone();
        e.labels = u.truth.attributes.clone().into_iter().collect();
        corpus.add(e);
    }
    (corpus, test)
}

/// Mean matching accuracy of `learners` over held-out pairs.
fn accuracy_over_pairs(
    matcher: &MatchingAdvisor,
    test: &[University],
) -> (f64, f64, f64) {
    let (mut acc, mut prec, mut rec) = (0.0, 0.0, 0.0);
    let mut pairs = 0;
    for w in test.chunks(2) {
        if w.len() < 2 {
            break;
        }
        let (a, b) = (&w[0], &w[1]);
        let proposed = matcher.match_schemas(&a.schema, &a.data, &b.schema, &b.data);
        let truth = a.truth.correspondences(&b.truth);
        if truth.is_empty() {
            continue;
        }
        let q = MatchQuality::evaluate(&proposed, &truth);
        acc += q.accuracy;
        prec += q.precision;
        rec += q.recall;
        pairs += 1;
    }
    let n = pairs.max(1) as f64;
    (acc / n, prec / n, rec / n)
}

/// E6 — §4.3.2: LSD-style matching accuracy by learner and difficulty.
/// The paper's claim: multi-strategy matching reaches 70–90% accuracy.
pub fn e6_matching_accuracy() -> Table {
    let mut t = Table::new(
        "E6: schema matching accuracy by learner and difficulty (\u{a7}4.3.2; LSD 70-90% claim)",
        &["rename prob", "italian frac", "learner", "accuracy", "precision", "recall"],
    );
    for &(rename, italian) in &[(0.3f64, 0.0f64), (0.6, 0.0), (1.0, 0.25), (1.0, 0.5)] {
        let (corpus, test) = split_corpus(2003, 18, 12, rename, italian);
        let clf = MultiStrategyClassifier::train(&corpus);
        for (learners, label) in [
            (vec![Learner::Name], "name"),
            (vec![Learner::Value], "value"),
            (vec![Learner::Structure], "structure"),
            (vec![Learner::Meta], "multi-strategy"),
        ] {
            let matcher = MatchingAdvisor::new(clf.clone()).with_learners(learners);
            let (acc, prec, rec) = accuracy_over_pairs(&matcher, &test);
            t.row(vec![
                f2(rename),
                f2(italian),
                label.to_string(),
                f2(acc),
                f2(prec),
                f2(rec),
            ]);
        }
    }
    t
}

/// E7 — §4.3.1: DesignAdvisor retrieval quality vs corpus size. The
/// corpus mixes university schemas with junk-domain distractors; we
/// measure where the first same-domain schema ranks for a fresh fragment.
pub fn e7_design_advisor() -> Table {
    let mut t = Table::new(
        "E7: DesignAdvisor ranking quality vs corpus size (\u{a7}4.3.1)",
        &[
            "university schemas", "distractors", "rank of first real", "MRR",
            "top-1 fit", "advice items",
        ],
    );
    for &n in &[4usize, 8, 16, 32] {
        let (mut corpus, test) = split_corpus(77, n + 1, n, 0.5, 0.0);
        // Distractor schemas from unrelated domains.
        let distractors = n / 2;
        for d in 0..distractors {
            corpus.add(CorpusEntry::schema_only(
                DbSchema::new(format!("Junk{d}"))
                    .with(RelSchema::text("invoice", &["sku", "amount_due", "po_number"]))
                    .with(RelSchema::text("shipment", &["tracking", "carrier", "weight_kg"])),
            ));
        }
        let advisor = DesignAdvisor::new(
            &corpus,
            MatchingAdvisor::new(MultiStrategyClassifier::train(&corpus)),
        );
        // Fragment: the held-out university's course relation.
        let fresh = &test[0];
        let course_rel = fresh
            .truth
            .relations
            .iter()
            .find(|(_, c)| *c == "course")
            .map(|(r, _)| r.clone())
            .expect("course relation exists");
        let fragment =
            DbSchema::new("draft").with(fresh.schema.relation(&course_rel).unwrap().clone());
        let mut data = Catalog::new();
        data.register(fresh.data.get(&course_rel).unwrap().clone());
        let ranking = advisor.rank(&corpus, &fragment, &data);
        let first_real = ranking
            .iter()
            .position(|r| !r.name.starts_with("Junk"))
            .map(|p| p + 1)
            .unwrap_or(ranking.len());
        let advice = advisor.advise(&corpus, &fragment, &data, 3);
        t.row(vec![
            n.to_string(),
            distractors.to_string(),
            first_real.to_string(),
            f2(1.0 / first_real as f64),
            f2(ranking[0].fit),
            advice.len().to_string(),
        ]);
    }
    t
}

/// E9 — §4.2: statistics computation scaling and similar-name quality.
pub fn e9_stats_scaling() -> Table {
    let mut t = Table::new(
        "E9: corpus statistics scaling & similar-name quality (\u{a7}4.2)",
        &[
            "schemas", "distinct terms", "frequent pairs (sup>=25%)", "compute ms",
            "synonym hits@5",
        ],
    );
    // Probe pairs: true synonyms the statistics should surface
    // distributionally (without any dictionary).
    let probes = [("instructor", "teacher"), ("enrollment", "size"), ("time", "schedule")];
    for &n in &[10usize, 50, 100, 200] {
        let gen = UniversityGenerator {
            seed: 99,
            rename_prob: 0.6,
            rows_per_relation: 6,
            ..Default::default()
        };
        let mut corpus = Corpus::new();
        for u in gen.generate(n) {
            let mut e = CorpusEntry::schema_only(u.schema.clone());
            e.data = u.data.clone();
            corpus.add(e);
        }
        let start = Instant::now();
        let stats = CorpusStats::compute(&corpus);
        let elapsed = start.elapsed();
        let hits = probes
            .iter()
            .filter(|(a, b)| {
                stats
                    .similar_names(a, 5)
                    .iter()
                    .any(|(term, _)| *term == revere_corpus::text::stem(b))
            })
            .count();
        t.row(vec![
            n.to_string(),
            stats.usage.len().to_string(),
            stats.frequent_pairs_above(n / 4).len().to_string(),
            ms(elapsed),
            format!("{hits}/{}", probes.len()),
        ]);
    }
    t
}

/// E10 — §3 / Example 3.1: joining via the most-similar peer takes less
/// residual mapping effort than mapping to a global mediated schema.
///
/// The setup mirrors the paper's Trento argument exactly: the mediated
/// schema is in canonical English, the coalition contains Italian peers,
/// and the coordinator has **no inter-language dictionary** (English-only
/// synonym table) — so "if the University of Rome ... maps its schema to a
/// mediated schema that uses terms in English, this does not help the
/// University of Trento. It would be much easier for Trento to provide a
/// mapping to the Rome schema." Effort = true correspondences the advisor
/// failed to propose (which the coordinator must author by hand).
///
/// Two modeling rules keep the comparison honest:
///
/// * **Each route is helped only by its own ecosystem's corpus.** The
///   similar-peer route uses the local coalition's corpus (which contains
///   Italian peers); the mediated route uses the mediated schema's
///   English-only corpus. Training the mediated matcher on a labeled
///   bilingual corpus would hand it exactly the inter-language dictionary
///   the ablation removes — a learned one.
/// * **Matching is schema-level** (no instance samples). Piazza mappings
///   (Fig 4) are authored over schemas/DTDs, and a joining peer's data is
///   unreachable through the PDMS until the mapping exists; letting the
///   tool read the joiner's tuples would also trivialize the language
///   variable, since value formats (phones, emails, counts) are
///   language-blind.
pub fn e10_join_effort() -> Table {
    let mut t = Table::new(
        "E10: new-peer join effort, similar peer vs mediated schema (\u{a7}3, Ex. 3.1)",
        &[
            "joining peer", "language", "strategy", "partner", "auto-matched",
            "residual (hand-authored)", "effort ratio",
        ],
    );
    // Coalition: 8 universities, some Italian (Roma-like peers exist).
    let coalition_gen = UniversityGenerator {
        seed: 31,
        rename_prob: 0.5,
        italian_fraction: 0.4,
        rows_per_relation: 12,
        ..Default::default()
    };
    let coalition = coalition_gen.generate(8);
    let mut corpus = Corpus::new();
    for u in &coalition {
        let mut e = CorpusEntry::schema_only(u.schema.clone());
        e.data = u.data.clone();
        e.labels = u.truth.attributes.clone().into_iter().collect();
        corpus.add(e);
    }
    // The mediated schema: canonical English, complete.
    let mediated = UniversityGenerator {
        seed: 1,
        rename_prob: 0.0,
        drop_prob: 0.0,
        italian_fraction: 0.0,
        rows_per_relation: 12,
    }
    .generate_one(0);
    // The mediated ecosystem's corpus: English universities only.
    let english_gen = UniversityGenerator {
        seed: 32,
        rename_prob: 0.5,
        italian_fraction: 0.0,
        rows_per_relation: 12,
        ..Default::default()
    };
    let mut english_corpus = Corpus::new();
    for u in &english_gen.generate(8) {
        let mut e = CorpusEntry::schema_only(u.schema.clone());
        e.data = u.data.clone();
        e.labels = u.truth.attributes.clone().into_iter().collect();
        english_corpus.add(e);
    }
    // No inter-language dictionary: English-only synonyms on both routes.
    let english = revere_corpus::text::SynonymTable::english_only();
    let matcher = MatchingAdvisor::new(MultiStrategyClassifier::train(&corpus))
        .with_synonyms(english.clone());
    let mediated_matcher = MatchingAdvisor::new(MultiStrategyClassifier::train(&english_corpus))
        .with_synonyms(english);
    let advisor = DesignAdvisor::new(&corpus, matcher.clone());

    let joiners = [
        (
            UniversityGenerator {
                seed: 500,
                rename_prob: 1.0,
                italian_fraction: 1.0,
                rows_per_relation: 12,
                ..Default::default()
            }
            .generate_one(0),
            "italian (Trento-like)",
        ),
        (
            UniversityGenerator {
                seed: 501,
                rename_prob: 1.0,
                italian_fraction: 0.0,
                rows_per_relation: 12,
                ..Default::default()
            }
            .generate_one(1),
            "english (fully renamed)",
        ),
    ];
    for (joiner, lang) in &joiners {
        // Strategy A: map to the most similar coalition peer, chosen by
        // the DesignAdvisor over the corpus.
        let ranking = advisor.rank(&corpus, &joiner.schema, &joiner.data);
        let best = &coalition[ranking[0].corpus_index];
        // Strategy B: map to the mediated schema (helped only by the
        // mediated ecosystem's English corpus).
        let empty = Catalog::new();
        for (strategy, route_matcher, partner) in [
            ("similar peer", &matcher, best),
            ("mediated", &mediated_matcher, &mediated),
        ] {
            // Schema-level matching: see the modeling rules above.
            let proposed =
                route_matcher.match_schemas(&joiner.schema, &empty, &partner.schema, &empty);
            let truth = joiner.truth.correspondences(&partner.truth);
            let q = MatchQuality::evaluate(&proposed, &truth);
            let matchable: std::collections::BTreeSet<_> =
                truth.iter().map(|(a, _)| a.clone()).collect();
            let auto = (q.accuracy * matchable.len() as f64).round() as usize;
            let residual = matchable.len().saturating_sub(auto);
            t.row(vec![
                joiner.name.clone(),
                lang.to_string(),
                strategy.to_string(),
                partner.name.clone(),
                auto.to_string(),
                residual.to_string(),
                f2(residual as f64 / matchable.len().max(1) as f64),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_meta_in_or_above_the_paper_band_and_robust_across_difficulty() {
        let t = e6_matching_accuracy();
        // Group rows by difficulty (4 learners each).
        for block in t.rows.chunks(4) {
            let acc = |label: &str| -> f64 {
                block
                    .iter()
                    .find(|r| r[2] == label)
                    .map(|r| r[3].parse().unwrap())
                    .unwrap()
            };
            let meta = acc("multi-strategy");
            let singles = [acc("name"), acc("value"), acc("structure")];
            let best = singles.iter().cloned().fold(0.0f64, f64::max);
            let worst = singles.iter().cloned().fold(1.0f64, f64::min);
            // The paper's band: ≥ 0.7 accuracy at every difficulty.
            assert!(meta >= 0.7, "meta below the LSD band: {block:?}");
            // Robustness: within a small margin of the best single
            // learner and never collapsing to below the worst one.
            // (On this synthetic workload the value learner is
            // near-ceiling — its generated formats are unrealistically
            // discriminative — so the meta tracks rather than beats it;
            // see EXPERIMENTS.md for the discussion.)
            assert!(meta >= best - 0.15, "meta {meta} far below best {best}: {block:?}");
            assert!(meta >= worst - 0.03, "meta {meta} below worst {worst}: {block:?}");
        }
    }

    #[test]
    fn e7_real_schema_ranks_first_or_second() {
        let t = e7_design_advisor();
        for r in &t.rows {
            let rank: usize = r[2].parse().unwrap();
            assert!(rank <= 2, "{r:?}");
        }
    }

    #[test]
    fn e9_statistics_scale_and_find_synonyms() {
        let t = e9_stats_scaling();
        let last = t.rows.last().unwrap();
        let hits = last[4].split('/').next().unwrap().parse::<usize>().unwrap();
        assert!(hits >= 2, "distributional synonyms not surfacing: {last:?}");
    }

    #[test]
    fn e10_similar_peer_wins_cross_language_and_ties_within_language() {
        let t = e10_join_effort();
        // Row pairs: (similar peer, mediated) per joiner.
        // Italian joiner, no inter-language dictionary: the paper's
        // Trento argument — mapping to a similar (Italian) peer needs
        // strictly less hand-authoring than the English mediated schema.
        let italian = &t.rows[0..2];
        let it_similar: usize = italian[0][5].parse().unwrap();
        let it_mediated: usize = italian[1][5].parse().unwrap();
        assert!(
            it_similar < it_mediated,
            "cross-language: similar peer should win: {italian:?}"
        );
        // English joiner: both strategies work; similar-peer must be in
        // the same ballpark (within a small absolute margin).
        let english = &t.rows[2..4];
        let en_similar: usize = english[0][5].parse().unwrap();
        let en_mediated: usize = english[1][5].parse().unwrap();
        assert!(
            en_similar <= en_mediated + 3,
            "within-language: similar peer far worse: {english:?}"
        );
    }
}
