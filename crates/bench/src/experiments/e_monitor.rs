//! E19: the health monitor under chaos — fault attribution, detection
//! latency, and the cost of telemetry.
//!
//! PR 10's monitor claims it can watch a degrading overlay and name the
//! degraded peers. E19 closes the loop with the chaos machinery: an
//! E12-style seeded [`FaultPlan`] downs a fraction of a 32-peer random
//! overlay (plus message drops, flaky responses, latency) and crashes
//! one healthy peer mid-run, a zipf [`QueryMix`] drives traffic from
//! `P0`, and a [`Monitor`] scrapes every peer once per query tick. The
//! experiment then *asserts* (in-report regression gates, like E15/E18):
//!
//! * **exact attribution** — the monitor's `Suspect`/`Down` set equals
//!   the injected degraded-peer set: zero misses, zero false positives
//!   (`Degraded` verdicts are reported but not flagged, bounding the
//!   false-positive surface);
//! * **bounded detection latency** — every injected fault is flagged
//!   within `REVERE_E19_MAX_DETECT_TICKS` of its onset;
//! * **bounded telemetry cost** — the production observability profile
//!   (head-sampled tracing + flight recorder + windowed metrics) costs at
//!   most `REVERE_E19_MAX_OVERHEAD_PCT` percent over [`Obs::disabled`]
//!   on the same workload.
//!
//! Attribution and latency are pure functions of `REVERE_E19_SEED`; only
//! the overhead row measures wall time (min-of-N, like E15's cost table).

use crate::fixtures::network_from_topology;
use crate::table::{f2, Table};
use revere_pdms::fault::{FaultPlan, FaultSpec};
use revere_pdms::monitor::{Health, Monitor};
use revere_pdms::obs::{Obs, ObsConfig};
use revere_pdms::PdmsNetwork;
use revere_workload::{course_templates, QueryMix, Topology, TopologyKind};
use std::time::Instant;

/// Default seed for the E19 overlay, chaos plan, and query mix.
pub const MONITOR_SEED: u64 = 1003;

/// The chaos dial: same "degraded but not collapsed" level E14b replays.
pub const CHAOS_RATE: f64 = 0.2;

/// Seed for the E19 run (override: `REVERE_E19_SEED`).
pub fn e19_seed() -> u64 {
    std::env::var("REVERE_E19_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(MONITOR_SEED)
}

/// Detection-latency gate in monitor ticks (override:
/// `REVERE_E19_MAX_DETECT_TICKS`).
pub fn e19_max_detect_ticks() -> u64 {
    std::env::var("REVERE_E19_MAX_DETECT_TICKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// Telemetry-overhead gate in percent (override:
/// `REVERE_E19_MAX_OVERHEAD_PCT`).
pub fn e19_max_overhead_pct() -> f64 {
    std::env::var("REVERE_E19_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50.0)
}

/// Scale knobs, so tests can run a smaller instance of the same shape.
#[derive(Debug, Clone, Copy)]
pub struct E19Config {
    /// Overlay size.
    pub peers: usize,
    /// Rows per peer.
    pub rows: usize,
    /// Distinct query templates in the zipf mix.
    pub templates: usize,
    /// Queries driven (= monitor ticks; one scrape per query).
    pub queries: usize,
}

impl Default for E19Config {
    fn default() -> Self {
        E19Config { peers: 32, rows: 3, templates: 12, queries: 48 }
    }
}

/// One injected fault and how the monitor saw it.
#[derive(Debug, Clone)]
pub struct Detection {
    /// The degraded peer.
    pub peer: String,
    /// `"outage"` (down for the whole run) or `"crash"` (mid-run kill).
    pub kind: &'static str,
    /// Monitor tick the fault took effect.
    pub onset: u64,
    /// First tick the monitor flagged the peer Suspect-or-worse (`None` =
    /// missed — the attribution gate fails on it).
    pub detected: Option<u64>,
}

/// Everything the attribution run produces.
pub struct MonitorOutcome {
    /// Injected degraded peers, in name order.
    pub injected: Vec<String>,
    /// The monitor's final `Suspect`/`Down` set, in name order.
    pub flagged: Vec<String>,
    /// Peers merely `Degraded` at the end (reported, never flagged).
    pub degraded: Vec<String>,
    /// Per-fault detection records.
    pub detections: Vec<Detection>,
    /// Verdict-crossing events appended over the run.
    pub events: usize,
    /// The final dashboard (byte-deterministic for a given seed).
    pub dashboard: String,
}

/// Build the E19 network: the topology and data from the shared fixtures,
/// the chaos plan from `seed`, and one deterministic mid-run crash of the
/// first healthy non-`P0` peer.
fn e19_network(cfg: &E19Config, seed: u64) -> (PdmsNetwork, Vec<(String, &'static str, u64)>) {
    let topology = Topology::generate(TopologyKind::Random { extra: 2 }, cfg.peers, seed);
    let mut net = network_from_topology(&topology, cfg.rows);
    let chaos = FaultPlan::new(FaultSpec::chaos(seed, CHAOS_RATE));
    let mut faults: Vec<(String, &'static str, u64)> = (0..cfg.peers)
        .map(|i| format!("P{i}"))
        .filter(|p| chaos.is_down(p))
        .map(|p| (p, "outage", 0))
        .collect();
    let crash_tick = (cfg.queries / 2) as u64;
    let victim = (1..cfg.peers)
        .map(|i| format!("P{i}"))
        .find(|p| !chaos.is_down(p))
        .expect("some peer survived the chaos draw");
    faults.push((victim.clone(), "crash", crash_tick));
    faults.sort();
    net.faults = FaultPlan::new(FaultSpec::chaos(seed, CHAOS_RATE).with_crash(victim, crash_tick));
    (net, faults)
}

/// Drive the querymix workload with a monitor scraping once per query
/// tick, and report what it attributed.
pub fn monitor_outcome(cfg: &E19Config, seed: u64) -> MonitorOutcome {
    let (net, faults) = e19_network(cfg, seed);
    let mut mix = QueryMix::zipf(course_templates("P0", cfg.templates), 1.1, seed);
    let mut mon = Monitor::default();
    for tick in 0..cfg.queries as u64 {
        let q = mix.next_query().to_string();
        net.query_str("P0", &q).expect("E19 query runs");
        mon.scrape(&net, tick);
    }
    let injected: Vec<String> = faults.iter().map(|(p, _, _)| p.clone()).collect();
    let detections = faults
        .iter()
        .map(|(peer, kind, onset)| Detection {
            peer: peer.clone(),
            kind,
            onset: *onset,
            detected: mon.first_flagged_tick(peer),
        })
        .collect();
    let degraded = mon
        .verdicts()
        .into_iter()
        .filter(|(_, h)| *h == Health::Degraded)
        .map(|(p, _)| p)
        .collect();
    MonitorOutcome {
        injected,
        flagged: mon.flagged(),
        degraded,
        detections,
        events: mon.events().len(),
        dashboard: mon.render_dashboard(),
    }
}

/// Mean per-query latency (µs) of the workload under `obs`, min-of-`runs`.
fn time_workload(cfg: &E19Config, seed: u64, runs: usize, obs: impl Fn() -> Obs) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let (mut net, _) = e19_network(cfg, seed);
        net.obs = obs();
        let mut mix = QueryMix::zipf(course_templates("P0", cfg.templates), 1.1, seed);
        let started = Instant::now();
        for _ in 0..cfg.queries {
            let q = mix.next_query().to_string();
            net.query_str("P0", &q).expect("E19 query runs");
            net.obs.rotate_window();
        }
        let us = started.elapsed().as_secs_f64() * 1e6 / cfg.queries.max(1) as f64;
        best = best.min(us);
    }
    best
}

/// The production observability profile the overhead gate prices: a
/// 256-span flight recorder, 8 metric windows, 5% head sampling.
pub fn production_obs(seed: u64) -> Obs {
    Obs::with_config(ObsConfig {
        flight_capacity: Some(256),
        metric_windows: Some(8),
        sample_rate: Some(0.05),
        sample_seed: seed,
    })
}

/// E19a — fault attribution and detection latency. Gates: the flagged
/// set equals the injected set exactly, and every detection lands within
/// [`e19_max_detect_ticks`].
pub fn e19_attribution() -> Table {
    let cfg = E19Config::default();
    let seed = e19_seed();
    let out = monitor_outcome(&cfg, seed);
    assert!(!out.injected.is_empty(), "seed {seed} injected no faults; pick another");
    assert_eq!(
        out.flagged, out.injected,
        "monitor mis-attributed under seed {seed}: injected {:?}, flagged {:?} \
         (degraded, unflagged: {:?})",
        out.injected, out.flagged, out.degraded
    );
    let max_ticks = e19_max_detect_ticks();
    let mut t = Table::new(
        format!(
            "E19a: fault attribution, {} peers / {} queries, chaos {} seed {} \
             (gate: detect <= {} ticks, REVERE_E19_MAX_DETECT_TICKS)",
            cfg.peers, cfg.queries, CHAOS_RATE, seed, max_ticks
        ),
        &["peer", "fault", "onset tick", "flagged at", "latency ticks", "gate"],
    );
    for d in &out.detections {
        let detected = d.detected.unwrap_or_else(|| {
            panic!("monitor never flagged injected peer {} under seed {seed}", d.peer)
        });
        let latency = detected.saturating_sub(d.onset);
        assert!(
            latency <= max_ticks,
            "detection of {} took {latency} ticks > gate {max_ticks} (REVERE_E19_MAX_DETECT_TICKS)",
            d.peer
        );
        t.row(vec![
            d.peer.clone(),
            d.kind.to_string(),
            d.onset.to_string(),
            detected.to_string(),
            latency.to_string(),
            "ok".to_string(),
        ]);
    }
    t.row(vec![
        format!("{} injected", out.injected.len()),
        "all flagged".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{} events", out.events),
        format!("{} degraded-only", out.degraded.len()),
    ]);
    t
}

/// E19b — telemetry overhead: the same chaos workload under three
/// observability profiles. Gate: the production profile stays within
/// [`e19_max_overhead_pct`] of disabled.
pub fn e19_overhead() -> Table {
    let cfg = E19Config::default();
    let seed = e19_seed();
    let runs = 3;
    let disabled = time_workload(&cfg, seed, runs, Obs::disabled);
    let full = time_workload(&cfg, seed, runs, Obs::enabled);
    let production = time_workload(&cfg, seed, runs, || production_obs(seed));
    let pct = |us: f64| (us - disabled) / disabled.max(1e-9) * 100.0;
    let gate = e19_max_overhead_pct();
    assert!(
        pct(production) <= gate,
        "production telemetry overhead {:.1}% > gate {gate}% (REVERE_E19_MAX_OVERHEAD_PCT): \
         disabled {disabled:.1}us, production {production:.1}us",
        pct(production)
    );
    let mut t = Table::new(
        format!(
            "E19b: telemetry overhead, min-of-{runs} (gate: production <= {gate}%, \
             REVERE_E19_MAX_OVERHEAD_PCT)",
        ),
        &["profile", "us/query", "overhead %", "gate"],
    );
    t.row(vec!["disabled".into(), f2(disabled), "-".into(), "-".into()]);
    t.row(vec!["full tracing".into(), f2(full), f2(pct(full)), "-".into()]);
    t.row(vec![
        "production (5% sampled, 256-span flight, 8 windows)".into(),
        f2(production),
        f2(pct(production)),
        "ok".into(),
    ]);
    t
}

/// Both E19 tables.
pub fn e19_tables() -> Vec<Table> {
    vec![e19_attribution(), e19_overhead()]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small instance of the E19 shape for the unit suite; the full
    /// 32-peer gate runs under `report E19` / `scripts/verify.sh`.
    fn small() -> E19Config {
        E19Config { peers: 10, rows: 2, templates: 6, queries: 16 }
    }

    #[test]
    fn attribution_is_exact_on_the_small_instance() {
        let out = monitor_outcome(&small(), e19_seed());
        assert!(!out.injected.is_empty());
        assert_eq!(out.flagged, out.injected, "degraded-only: {:?}", out.degraded);
        for d in &out.detections {
            let detected = d.detected.expect("every injected fault detected");
            assert!(detected.saturating_sub(d.onset) <= e19_max_detect_ticks());
        }
    }

    #[test]
    fn outcome_is_deterministic() {
        let (a, b) = (monitor_outcome(&small(), 5), monitor_outcome(&small(), 5));
        assert_eq!(a.dashboard, b.dashboard);
        assert_eq!(a.flagged, b.flagged);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn crash_victim_is_flagged_only_after_onset() {
        let cfg = small();
        let out = monitor_outcome(&cfg, e19_seed());
        let crash = out
            .detections
            .iter()
            .find(|d| d.kind == "crash")
            .expect("a crash is always injected");
        assert!(crash.onset > 0);
        assert!(crash.detected.expect("crash detected") > crash.onset);
    }
}
