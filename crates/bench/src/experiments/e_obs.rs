//! E14: observability — estimator calibration and per-peer fetch cost.
//!
//! The obs layer (PR 5) exists to answer two questions the earlier
//! experiments could only gesture at. First: *how well calibrated is the
//! PR 3 cost model?* EXPLAIN ANALYZE records actual binding-table sizes
//! next to the planner's estimates, so we can report the q-error
//! distribution — `max(est/actual, actual/est)`, clamped at 1 — of every
//! plan step the E13 workload executes, grouped by step depth (estimates
//! compound multiplicatively, so error should grow with depth). Second:
//! *where do the messages go under chaos?* The `pdms.fetch` spans carry
//! per-peer attempt/message/drop/retry/latency annotations, so the E12
//! chaos plan's cost can be broken down by owner peer instead of reported
//! as one aggregate.
//!
//! Both tables are pure functions of the fixed seeds: E14a evaluates the
//! E13 template pool against the same merged snapshot the planner's
//! statistics describe, and E14b replays the E12 topology and fault plan
//! with tracing enabled — the contract that enabling observability never
//! changes answers is asserted in the sweep itself.

use crate::fixtures::network_from_topology;
use crate::table::Table;
use revere_pdms::fault::{FaultPlan, FaultSpec};
use revere_pdms::obs::Obs;
use revere_query::plan::explain_analyze;
use revere_workload::{course_templates, Topology, TopologyKind};
use std::collections::BTreeMap;

use super::e_chaos::CHAOS_SEED;
use super::e_plancache::{plan_cache_network, PlanCacheConfig};

/// The failure rate E14b replays from the E12 sweep (degraded but not
/// collapsed: drops, retries, and unreachable peers all show up).
pub const BREAKDOWN_RATE: f64 = 0.2;

/// Calibration of the cost model on the E13 workload: every q-error of
/// every executed plan step, as `(step depth, q_error)` with depth
/// 1-based. Deterministic: the E13 seed fixes topology, data, and
/// reformulation, and evaluation runs against the merged snapshot whose
/// statistics the planner consumed.
pub fn calibration_points() -> Vec<(usize, f64)> {
    calibration_points_with(PlanCacheConfig::default())
}

/// Calibration at an explicit scale (tests run a smaller instance).
pub fn calibration_points_with(cfg: PlanCacheConfig) -> Vec<(usize, f64)> {
    let net = plan_cache_network(&cfg);
    let snapshot = net.snapshot_all();
    let mut points = Vec::new();
    for q in course_templates("P0", cfg.templates) {
        let out = net.query_str("P0", &q).expect("template query runs");
        for d in &out.reformulation.union.disjuncts {
            let ea = explain_analyze(d, &snapshot).expect("disjunct evaluates");
            for (depth, q_err) in ea.q_errors().into_iter().enumerate() {
                points.push((depth + 1, q_err));
            }
        }
    }
    points
}

/// One row of the E14a table: the q-error distribution at one step depth.
pub struct CalibrationRow {
    /// 1-based step depth within a plan.
    pub depth: usize,
    /// Executed plan steps at this depth.
    pub steps: usize,
    /// Median q-error.
    pub median: f64,
    /// 90th-percentile q-error.
    pub p90: f64,
    /// Worst q-error.
    pub max: f64,
    /// Fraction of steps with q-error ≤ 2.
    pub within_2x: f64,
}

/// Nearest-rank percentile of a sorted slice (`p` in 0..=100).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// Group the calibration points by step depth.
pub fn calibration_rows(points: &[(usize, f64)]) -> Vec<CalibrationRow> {
    let mut by_depth: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for &(depth, q) in points {
        by_depth.entry(depth).or_default().push(q);
    }
    by_depth
        .into_iter()
        .map(|(depth, mut qs)| {
            qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let within = qs.iter().filter(|&&q| q <= 2.0).count();
            CalibrationRow {
                depth,
                steps: qs.len(),
                median: percentile(&qs, 50.0),
                p90: percentile(&qs, 90.0),
                max: *qs.last().unwrap(),
                within_2x: within as f64 / qs.len() as f64,
            }
        })
        .collect()
}

/// E14a — cost-model calibration: per-step q-error on the E13 workload.
pub fn e14_calibration() -> Table {
    let mut t = Table::new(
        "E14a: cost-model calibration — q-error of estimated vs actual bindings by step depth \
         (E13 workload)",
        &["step depth", "steps", "median q", "p90 q", "max q", "within 2x"],
    );
    for r in calibration_rows(&calibration_points()) {
        t.row(vec![
            r.depth.to_string(),
            r.steps.to_string(),
            format!("{:.2}", r.median),
            format!("{:.2}", r.p90),
            format!("{:.2}", r.max),
            format!("{:.0}%", r.within_2x * 100.0),
        ]);
    }
    t
}

/// One `pdms.fetch` span under the chaos plan, keyed by the owner peer.
pub struct FetchRow {
    /// The peer that owns the fetched relation (or "-" for spans that
    /// never resolved an owner).
    pub owner: String,
    /// Terminal outcome recorded on the span.
    pub outcome: String,
    /// Send attempts ("-" for local/unreachable-before-send outcomes).
    pub attempts: String,
    /// Messages charged to this fetch.
    pub messages: String,
    /// Requests lost in flight.
    pub dropped: String,
    /// Attempts beyond each first try.
    pub retries: String,
    /// Simulated latency ticks this fetch consumed.
    pub latency_ticks: String,
    /// Tuples delivered ("-" when nothing arrived).
    pub tuples: String,
}

/// Replay the E12 query at [`BREAKDOWN_RATE`] with tracing enabled and
/// break the fetch phase down per owner peer from the recorded spans.
/// Also asserts the obs contract: the traced run returns exactly the
/// answers and completeness of an untraced run.
pub fn fetch_breakdown() -> Vec<FetchRow> {
    let topology = Topology::generate(TopologyKind::Random { extra: 2 }, 16, 7);
    let build = || {
        let mut net = network_from_topology(&topology, 2);
        net.faults = FaultPlan::new(FaultSpec::chaos(CHAOS_SEED, BREAKDOWN_RATE));
        net
    };
    let q = "q(T, E) :- P0.course(T, E)";
    let plain = build().query_str("P0", q).expect("chaos query runs");
    let mut net = build();
    net.obs = Obs::enabled();
    let traced = net.query_str("P0", q).expect("chaos query runs");
    assert_eq!(plain.answers, traced.answers, "tracing changed answers");
    assert_eq!(plain.completeness, traced.completeness, "tracing changed completeness");

    let arg = |s: &revere_pdms::obs::SpanRecord, k: &str| {
        s.arg(k).map(str::to_string).unwrap_or_else(|| "-".into())
    };
    net.obs
        .tracer()
        .expect("obs enabled")
        .spans()
        .iter()
        .filter(|s| s.name == "pdms.fetch")
        .map(|s| FetchRow {
            owner: arg(s, "owner"),
            outcome: arg(s, "outcome"),
            attempts: arg(s, "attempts"),
            messages: arg(s, "messages"),
            dropped: arg(s, "dropped"),
            retries: arg(s, "retries"),
            latency_ticks: arg(s, "latency_ticks"),
            tuples: arg(s, "tuples"),
        })
        .collect()
}

/// E14b — per-peer fetch breakdown under the E12 chaos plan.
pub fn e14_fetch_breakdown() -> Table {
    let mut t = Table::new(
        "E14b: per-peer fetch breakdown under chaos (E12 plan, fail rate 0.20), from pdms.fetch \
         spans",
        &[
            "owner", "outcome", "attempts", "messages", "dropped", "retries", "latency ticks",
            "tuples",
        ],
    );
    for r in fetch_breakdown() {
        t.row(vec![
            r.owner,
            r.outcome,
            r.attempts,
            r.messages,
            r.dropped,
            r.retries,
            r.latency_ticks,
            r.tuples,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_points() -> Vec<(usize, f64)> {
        calibration_points_with(PlanCacheConfig {
            peers: 3,
            rows_per_peer: 12,
            templates: 8,
            queries: 16,
        })
    }

    #[test]
    fn calibration_covers_multiple_depths_with_sane_q_errors() {
        let rows = calibration_rows(&small_points());
        assert!(rows.len() >= 2, "expected multi-step plans, got {} depths", rows.len());
        for r in &rows {
            assert!(r.steps > 0);
            assert!(r.median >= 1.0, "q-error below 1 at depth {}", r.depth);
            assert!(r.max >= r.p90 && r.p90 >= r.median, "unsorted stats at depth {}", r.depth);
            assert!((0.0..=1.0).contains(&r.within_2x));
        }
        // Depth 1 is a plain scan: the estimator knows relation
        // cardinalities exactly, so the first step is perfectly calibrated.
        assert_eq!(rows[0].depth, 1);
        assert!((rows[0].median - 1.0).abs() < 1e-9, "{}", rows[0].median);
    }

    #[test]
    fn calibration_is_deterministic() {
        let a = small_points();
        let b = small_points();
        assert_eq!(a.len(), b.len());
        for ((da, qa), (db, qb)) in a.iter().zip(&b) {
            assert_eq!(da, db);
            assert_eq!(qa, qb);
        }
    }

    #[test]
    fn fetch_breakdown_sees_the_chaos() {
        let rows = fetch_breakdown();
        assert!(!rows.is_empty());
        // The chaos dial at 0.2 actually degrades something.
        assert!(
            rows.iter().any(|r| r.outcome == "unreachable" || r.outcome == "owner_gone"),
            "no degraded fetches at rate {BREAKDOWN_RATE}"
        );
        // And most of the overlay still delivers.
        let delivered = rows.iter().filter(|r| r.outcome == "delivered").count();
        assert!(delivered > rows.len() / 2, "{delivered}/{} delivered", rows.len());
        // Remote outcomes carry the message accounting.
        for r in rows.iter().filter(|r| r.outcome == "delivered") {
            assert!(r.messages.parse::<usize>().unwrap() >= 2, "{}", r.messages);
            assert!(r.latency_ticks.parse::<u64>().is_ok());
        }
    }

    #[test]
    fn fetch_breakdown_is_deterministic() {
        let a = e14_fetch_breakdown();
        let b = e14_fetch_breakdown();
        assert_eq!(a.rows, b.rows);
    }
}
