//! E1–E3: the PDMS experiments.

use crate::fixtures::course_network;
use crate::table::{ms, Table};
use revere_pdms::xmlmap::figure4_mapping;
use revere_pdms::{ReformulateOptions, Reformulator};
use revere_query::{parse_query, GlavMapping};
use revere_workload::{Topology, TopologyKind};
use std::collections::HashMap;
use std::time::Instant;

/// E1 — Fig 2 / §3: connectivity suffices for full reach, with a linear
/// number of mappings (vs quadratic pairwise).
pub fn e1_reachability() -> Table {
    let mut t = Table::new(
        "E1: PDMS reachability & mapping effort (Fig 2, §3)",
        &[
            "peers", "topology", "mappings", "pairwise", "mediated", "diameter",
            "peers reached", "answers", "messages",
        ],
    );
    for &n in &[4usize, 8, 16, 32] {
        for (kind, label) in [
            (TopologyKind::Chain, "chain"),
            (TopologyKind::Star, "star"),
            (TopologyKind::Tree, "tree"),
            (TopologyKind::Random { extra: 2 }, "random+2"),
        ] {
            let topology = Topology::generate(kind, n, 7);
            let net = crate::fixtures::network_from_topology(&topology, 1);
            let out = net
                .query_str("P0", "q(T, E) :- P0.course(T, E)")
                .expect("query runs");
            t.row(vec![
                n.to_string(),
                label.to_string(),
                topology.mapping_count().to_string(),
                topology.pairwise_mapping_count().to_string(),
                topology.mediated_mapping_count().to_string(),
                topology.diameter().map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
                out.reformulation.peers_reached.len().to_string(),
                out.answers.len().to_string(),
                out.messages.to_string(),
            ]);
        }
    }
    t
}

/// E2 — §3.1.1: reformulation over the transitive closure; effect of the
/// pruning heuristics on chains with redundant shortcut edges.
pub fn e2_reformulation_pruning() -> Table {
    let mut t = Table::new(
        "E2: reformulation over the transitive closure; pruning ablation (§3.1.1)",
        &[
            "chain length", "extra edges", "pruning", "disjuncts", "nodes expanded",
            "candidates", "pruned(containment)", "pruned(visited)", "time ms",
        ],
    );
    for &k in &[2usize, 4, 6, 8] {
        for &extra in &[0usize, 2] {
            // A chain of k peers plus `extra` redundant shortcut mappings.
            let mut mappings: Vec<GlavMapping> = (1..k)
                .map(|i| {
                    GlavMapping::parse(
                        format!("m{i}"),
                        format!("P{}", i - 1),
                        format!("P{i}"),
                        &format!(
                            "m(T, E) :- P{}.course(T, E) ==> m(T, E) :- P{i}.course(T, E)",
                            i - 1
                        ),
                    )
                    .expect("chain mapping parses")
                })
                .collect();
            for e in 0..extra.min(k.saturating_sub(2)) {
                mappings.push(
                    GlavMapping::parse(
                        format!("short{e}"),
                        format!("P{e}"),
                        format!("P{}", e + 2),
                        &format!(
                            "m(T, E) :- P{e}.course(T, E) ==> m(T, E) :- P{}.course(T, E)",
                            e + 2
                        ),
                    )
                    .expect("shortcut mapping parses"),
                );
            }
            let q = parse_query(&format!("q(T, E) :- P{}.course(T, E)", k - 1)).unwrap();
            for pruning in [true, false] {
                let reformulator = Reformulator::new(
                    mappings.clone(),
                    ReformulateOptions { pruning, ..Default::default() },
                );
                let start = Instant::now();
                let res = reformulator.reformulate(&q);
                let elapsed = start.elapsed();
                t.row(vec![
                    k.to_string(),
                    extra.to_string(),
                    if pruning { "on" } else { "off" }.to_string(),
                    res.union.len().to_string(),
                    res.nodes_expanded.to_string(),
                    res.candidates_generated.to_string(),
                    res.pruned_by_containment.to_string(),
                    res.pruned_by_visited.to_string(),
                    ms(elapsed),
                ]);
            }
        }
    }
    t
}

/// E3 — Figs 3+4: the XML mapping template end to end, scaling with
/// source size.
pub fn e3_xml_mapping() -> Table {
    let mut t = Table::new(
        "E3: Figure 4 Berkeley->MIT XML mapping (Figs 3-4)",
        &["depts", "courses", "output subjects", "valid vs MIT DTD", "time ms"],
    );
    let mapping = figure4_mapping();
    for &depts in &[1usize, 8, 32, 128] {
        let courses_per = 4;
        let mut src = String::from("<schedule><college><name>Berkeley</name>");
        for d in 0..depts {
            src.push_str(&format!("<dept><name>D{d}</name>"));
            for c in 0..courses_per {
                src.push_str(&format!(
                    "<course><title>T{d}_{c}</title><size>{}</size></course>",
                    10 + c
                ));
            }
            src.push_str("</dept>");
        }
        src.push_str("</college></schedule>");
        let doc = revere_xml::parse(&src).expect("generated source parses");
        revere_xml::dtd::berkeley_schema().validate(&doc).expect("source valid");
        let start = Instant::now();
        let out = mapping
            .apply(&HashMap::from([("Berkeley.xml".to_string(), doc)]))
            .expect("mapping applies");
        let elapsed = start.elapsed();
        let subjects = revere_xml::Path::parse("//subject")
            .unwrap()
            .eval(&out, out.root())
            .len();
        let valid = revere_xml::dtd::mit_schema().validate(&out).is_ok();
        t.row(vec![
            depts.to_string(),
            (depts * courses_per).to_string(),
            subjects.to_string(),
            valid.to_string(),
            ms(elapsed),
        ]);
    }
    t
}

/// Reachability checks used by the reachability bench.
pub fn query_full_reach(n: usize, kind: TopologyKind) -> usize {
    let net = course_network(kind, n, 1, 7);
    net.query_str("P0", "q(T, E) :- P0.course(T, E)")
        .map(|o| o.answers.len())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_full_reach_everywhere() {
        let t = e1_reachability();
        // peers reached (col 6) always equals peers (col 0).
        for r in &t.rows {
            assert_eq!(r[0], r[6], "{r:?}");
        }
    }

    #[test]
    fn e2_pruning_never_increases_work() {
        let t = e2_reformulation_pruning();
        // Rows come in on/off pairs; compare nodes expanded.
        for pair in t.rows.chunks(2) {
            let on: usize = pair[0][4].parse().unwrap();
            let off: usize = pair[1][4].parse().unwrap();
            assert!(on <= off, "pruning expanded more nodes: {pair:?}");
            // Same number of disjuncts reached (completeness preserved)
            // for chains without shortcuts.
            if pair[0][1] == "0" {
                assert_eq!(pair[0][3], pair[1][3], "{pair:?}");
            }
        }
    }

    #[test]
    fn e3_output_counts_match_input() {
        let t = e3_xml_mapping();
        for r in &t.rows {
            assert_eq!(r[1], r[2], "subjects != courses: {r:?}");
            assert_eq!(r[3], "true");
        }
    }
}
