//! E8: updategrams and incremental view maintenance.

use crate::fixtures::big_relation;
use crate::table::{f2, ms, Table};
use revere_pdms::{maintain, MaintenanceChoice, MaterializedView, Updategram};
use revere_query::parse_query;
use revere_storage::{Catalog, Value};
use std::time::Instant;

/// E8 — §3.1.2: incremental maintenance beats invalidate-and-recompute
/// for small deltas; the cost model finds the crossover.
pub fn e8_updategrams() -> Table {
    let mut t = Table::new(
        "E8: updategram maintenance vs recompute (\u{a7}3.1.2)",
        &[
            "base rows", "delta rows", "delta %", "incremental ms", "recompute ms",
            "speedup", "cost model picks",
        ],
    );
    let base_rows = 50_000usize;
    let domain = 1_000i64;
    for &delta_pct in &[0.05f64, 0.5, 2.0, 10.0, 40.0, 150.0] {
        let delta_rows = ((base_rows as f64) * delta_pct / 100.0).round() as usize;
        let make = || {
            let mut c = Catalog::new();
            c.register(big_relation("r", base_rows, domain));
            c.register(big_relation("s", base_rows / 5, domain));
            let mut v = MaterializedView::new(
                "v",
                parse_query("v(A, C) :- r(A, B), s(B, C)").unwrap(),
            );
            v.refresh_full(&c).unwrap();
            (c, v)
        };
        let gram = || Updategram {
            relation: "r".into(),
            insert: (0..delta_rows)
                .map(|i| vec![Value::Int((i as i64 * 7) % domain), Value::Int((i as i64 * 3) % domain)])
                .collect(),
            delete: Vec::new(),
        };

        let (mut c1, mut v1) = make();
        let g1 = gram();
        let start = Instant::now();
        maintain(&mut c1, &mut v1, &[g1], Some(MaintenanceChoice::Incremental)).unwrap();
        let inc = start.elapsed();

        let (mut c2, mut v2) = make();
        let g2 = gram();
        let start = Instant::now();
        maintain(&mut c2, &mut v2, &[g2], Some(MaintenanceChoice::Recompute)).unwrap();
        let rec = start.elapsed();

        assert_eq!(
            v1.as_relation().rows(),
            v2.as_relation().rows(),
            "maintenance paths diverged"
        );

        // What does the cost model choose, unforced?
        let (mut c3, mut v3) = make();
        let g3 = gram();
        let report = maintain(&mut c3, &mut v3, &[g3], None).unwrap();

        t.row(vec![
            base_rows.to_string(),
            delta_rows.to_string(),
            f2(delta_pct),
            ms(inc),
            ms(rec),
            f2(rec.as_secs_f64() / inc.as_secs_f64().max(1e-9)),
            match report.choice {
                MaintenanceChoice::Incremental => "incremental",
                MaintenanceChoice::Recompute => "recompute",
            }
            .to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_incremental_wins_small_deltas_and_model_tracks_it() {
        let t = e8_updategrams();
        // Smallest delta: incremental much faster; model says incremental.
        let first = &t.rows[0];
        let speedup: f64 = first[5].parse().unwrap();
        assert!(speedup > 2.0, "small-delta speedup {speedup}: {first:?}");
        assert_eq!(first[6], "incremental");
        // The cost model's crossover lies inside the sweep: the largest
        // delta (150% of base) flips it to recompute.
        let last = t.rows.last().unwrap();
        assert_eq!(last[6], "recompute", "{last:?}");
        // Speedup decays monotonically-ish: last ratio below first.
        let last_speedup: f64 = last[5].parse().unwrap();
        assert!(last_speedup < speedup, "{t}");
    }
}
