//! E13: plan once, run many — reformulation/plan caching under skewed
//! repeated-query workloads.
//!
//! The PDMS answers a query by reformulating it over the mapping graph's
//! transitive closure, fetching, planning, and evaluating. Reformulation
//! dominates that pipeline and is a pure function of (query, mappings),
//! so a workload that repeats queries — as real traffic does — should pay
//! it once. E13 sweeps the Zipf skew of a repeated-query trace and
//! measures: cache hit rates, mean cold vs warm query latency, end-to-end
//! time with caching on vs off, and (independently of caching) how many
//! intermediate join bindings the statistics-based planner produces
//! compared to the historical greedy order on the same trace's templates.
//!
//! Timings are wall-clock and machine-dependent; everything else in the
//! table (hit rates, binding counts, answer checksums) is a pure function
//! of the seed. The tests only assert the deterministic columns.

use crate::fixtures::network_with_rows;
use crate::table::Table;
use revere_pdms::PdmsNetwork;
use revere_query::plan::{plan_cq_with, Strategy};
use revere_query::eval_cq_bag_traced;
use revere_workload::{course_templates, QueryMix, Topology, TopologyKind};
use std::collections::BTreeSet;
use std::time::Instant;

/// The Zipf skews E13 sweeps (0 = uniform; higher = heavier repetition).
pub const SKEWS: [f64; 4] = [0.0, 0.6, 1.2, 1.8];

/// Seed for topology, data, and trace sampling.
pub const PLANCACHE_SEED: u64 = 1013;

/// Sweep dimensions, exposed so tests can run a smaller instance.
#[derive(Debug, Clone, Copy)]
pub struct PlanCacheConfig {
    /// Peers in the random overlay.
    pub peers: usize,
    /// Course rows per peer.
    pub rows_per_peer: usize,
    /// Distinct query templates.
    pub templates: usize,
    /// Queries per trace.
    pub queries: usize,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig { peers: 6, rows_per_peer: 40, templates: 12, queries: 48 }
    }
}

/// One row of the sweep.
pub struct PlanCachePoint {
    /// The Zipf skew of the trace.
    pub skew: f64,
    /// Queries in the trace.
    pub queries: usize,
    /// Distinct templates the trace actually sampled.
    pub distinct_templates: usize,
    /// Reformulation cache hits / queries.
    pub reformulation_hit_rate: f64,
    /// Plan cache hits / plan lookups.
    pub plan_hit_rate: f64,
    /// Mean latency of cold queries (first occurrence of a template), µs.
    pub cold_us: f64,
    /// Mean latency of warm queries (repeats), µs.
    pub warm_us: f64,
    /// Whole-trace time with caching enabled, µs.
    pub cached_total_us: u128,
    /// Whole-trace time with caching disabled, µs.
    pub uncached_total_us: u128,
    /// Total answer rows over the trace (identical cached/uncached).
    pub answer_rows: usize,
    /// Intermediate join bindings over the distinct templates, cost-based.
    pub cost_bindings: usize,
    /// Same, under the historical greedy order.
    pub greedy_bindings: usize,
}

/// Run the sweep at the default scale.
pub fn plan_cache_sweep() -> Vec<PlanCachePoint> {
    plan_cache_sweep_with(PlanCacheConfig::default())
}

/// The E13 overlay: a random topology whose peers hold *different-sized*
/// course relations (1×, 2×, 3× `rows_per_peer`, rotating) — reformulated
/// disjuncts then mix large and small relations in one body, which is
/// what makes join-order choices visible.
pub(crate) fn plan_cache_network(cfg: &PlanCacheConfig) -> PdmsNetwork {
    let topology =
        Topology::generate(TopologyKind::Random { extra: 2 }, cfg.peers, PLANCACHE_SEED);
    network_with_rows(&topology, |i| cfg.rows_per_peer * (1 + i % 3))
}

/// Run the sweep at an explicit scale.
pub fn plan_cache_sweep_with(cfg: PlanCacheConfig) -> Vec<PlanCachePoint> {
    let templates = course_templates("P0", cfg.templates);
    let mut points = Vec::new();
    for &skew in &SKEWS {
        let trace = QueryMix::zipf(templates.clone(), skew, PLANCACHE_SEED ^ skew.to_bits())
            .sample(cfg.queries);
        let distinct: BTreeSet<&String> = trace.iter().collect();

        // Caching on: per-query timing, split cold (first occurrence of a
        // template) from warm (repeat).
        let net = plan_cache_network(&cfg);
        let mut seen: BTreeSet<&String> = BTreeSet::new();
        let (mut cold_us, mut colds, mut warm_us, mut warms) = (0u128, 0usize, 0u128, 0usize);
        let mut answer_rows = 0usize;
        let cached_start = Instant::now();
        for q in &trace {
            let t = Instant::now();
            let out = net.query_str("P0", q).expect("trace query runs");
            let us = t.elapsed().as_micros();
            answer_rows += out.answers.len();
            if seen.insert(q) {
                cold_us += us;
                colds += 1;
            } else {
                warm_us += us;
                warms += 1;
            }
        }
        let cached_total_us = cached_start.elapsed().as_micros();
        let stats = net.cache_stats();

        // Caching off: same trace, same network construction.
        let mut plain = plan_cache_network(&cfg);
        plain.caching = false;
        let uncached_start = Instant::now();
        let mut plain_rows = 0usize;
        for q in &trace {
            plain_rows += plain.query_str("P0", q).expect("trace query runs").answers.len();
        }
        let uncached_total_us = uncached_start.elapsed().as_micros();
        assert_eq!(answer_rows, plain_rows, "caching changed answers at skew {skew}");

        // Join-order quality over what actually executes: every
        // reformulated disjunct of the trace's distinct templates,
        // measured as total intermediate bindings against the merged
        // snapshot — independent of caching, same data both strategies.
        let snapshot = net.snapshot_all();
        let (mut cost_bindings, mut greedy_bindings) = (0usize, 0usize);
        for q in &distinct {
            let out = net.query_str("P0", q).expect("trace query runs");
            for d in &out.reformulation.union.disjuncts {
                for (strategy, acc) in [
                    (Strategy::CostBased, &mut cost_bindings),
                    (Strategy::Greedy, &mut greedy_bindings),
                ] {
                    let plan = plan_cq_with(d, &snapshot, strategy);
                    let (_, steps) =
                        eval_cq_bag_traced(d, &plan, &snapshot).expect("disjunct evaluates");
                    *acc += steps.iter().sum::<usize>();
                }
            }
        }

        points.push(PlanCachePoint {
            skew,
            queries: trace.len(),
            distinct_templates: distinct.len(),
            reformulation_hit_rate: stats.reformulation_hits as f64 / trace.len() as f64,
            plan_hit_rate: stats.plan_hits as f64
                / (stats.plan_hits + stats.plan_misses).max(1) as f64,
            cold_us: cold_us as f64 / colds.max(1) as f64,
            warm_us: warm_us as f64 / warms.max(1) as f64,
            cached_total_us,
            uncached_total_us,
            answer_rows,
            cost_bindings,
            greedy_bindings,
        });
    }
    points
}

/// E13 — plan/reformulation caching vs workload skew ("plan once, run
/// many").
pub fn e13_plan_cache() -> Table {
    let mut t = Table::new(
        "E13: plan & reformulation caching under Zipf-repeated queries (plan once, run many)",
        &[
            "zipf s", "queries", "templates", "reform hit", "plan hit", "cold us/q",
            "warm us/q", "cold/warm x", "uncached/cached x", "inter-bindings cost:greedy",
        ],
    );
    for p in plan_cache_sweep() {
        t.row(vec![
            format!("{:.1}", p.skew),
            p.queries.to_string(),
            p.distinct_templates.to_string(),
            format!("{:.0}%", p.reformulation_hit_rate * 100.0),
            format!("{:.0}%", p.plan_hit_rate * 100.0),
            format!("{:.0}", p.cold_us),
            format!("{:.0}", p.warm_us),
            format!("{:.1}", p.cold_us / p.warm_us.max(1.0)),
            format!("{:.1}", p.uncached_total_us as f64 / p.cached_total_us.max(1) as f64),
            format!("{}:{}", p.cost_bindings, p.greedy_bindings),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> Vec<PlanCachePoint> {
        plan_cache_sweep_with(PlanCacheConfig {
            peers: 3,
            rows_per_peer: 12,
            templates: 8,
            queries: 16,
        })
    }

    #[test]
    fn skew_raises_hit_rates() {
        let points = smoke();
        let first = &points[0];
        let last = points.last().unwrap();
        assert!(last.reformulation_hit_rate >= first.reformulation_hit_rate);
        // The heaviest skew repeats its head template a lot.
        assert!(last.reformulation_hit_rate > 0.5, "{}", last.reformulation_hit_rate);
        assert!(last.plan_hit_rate > 0.5, "{}", last.plan_hit_rate);
    }

    #[test]
    fn caching_preserves_answers() {
        // The cross-check inside the sweep already asserts cached ==
        // uncached row counts; here we pin the deterministic totals.
        let a = smoke();
        let b = smoke();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.answer_rows, y.answer_rows);
            assert_eq!(x.distinct_templates, y.distinct_templates);
            assert_eq!(x.cost_bindings, y.cost_bindings);
            assert_eq!(x.greedy_bindings, y.greedy_bindings);
        }
    }

    #[test]
    fn cost_based_order_never_does_more_join_work() {
        for p in smoke() {
            assert!(
                p.cost_bindings <= p.greedy_bindings,
                "skew {}: cost {} > greedy {}",
                p.skew,
                p.cost_bindings,
                p.greedy_bindings
            );
        }
        // And on the constant-probe templates it strictly wins.
        assert!(smoke().iter().any(|p| p.cost_bindings < p.greedy_bindings));
    }

    #[test]
    fn every_query_hits_after_the_first_at_max_skew_single_template() {
        let points = plan_cache_sweep_with(PlanCacheConfig {
            peers: 3,
            rows_per_peer: 8,
            templates: 1,
            queries: 10,
        });
        for p in &points {
            assert_eq!(p.distinct_templates, 1);
            assert!((p.reformulation_hit_rate - 0.9).abs() < 1e-9, "{}", p.reformulation_hit_rate);
        }
    }
}
