//! The E1–E19 experiments (see DESIGN.md §2 for the paper anchors).

pub mod e_chaos;
pub mod e_corpus;
pub mod e_dataflow;
pub mod e_durability;
pub mod e_feedback;
pub mod e_mangrove;
pub mod e_monitor;
pub mod e_obs;
pub mod e_pdms;
pub mod e_placement;
pub mod e_plancache;
pub mod e_vec;
pub mod e_views;

use crate::table::Table;

/// Run every experiment in order.
pub fn run_all() -> Vec<Table> {
    let mut tables = vec![
        e_pdms::e1_reachability(),
        e_pdms::e2_reformulation_pruning(),
        e_pdms::e3_xml_mapping(),
        e_mangrove::e4_instant_gratification(),
        e_mangrove::e5_cleaning_policies(),
        e_corpus::e6_matching_accuracy(),
        e_corpus::e7_design_advisor(),
        e_views::e8_updategrams(),
        e_corpus::e9_stats_scaling(),
        e_corpus::e10_join_effort(),
        e_placement::e11_placement(),
        e_chaos::e12_chaos(),
        e_plancache::e13_plan_cache(),
        e_obs::e14_calibration(),
        e_obs::e14_fetch_breakdown(),
    ];
    tables.extend(e_feedback::e15_tables());
    tables.push(e_durability::e16_durability());
    tables.extend(e_dataflow::e17_tables());
    tables.extend(e_vec::e18_tables());
    tables.extend(e_monitor::e19_tables());
    tables
}

/// Run one experiment by id (`"E1"`..`"E19"`). An experiment may produce
/// more than one table (E14 reports calibration and the fetch breakdown;
/// E15 reports calibration before/after feedback and the loop's cost;
/// E17 reports delta scaling and the subscriber-fan-out shootout; E18
/// reports per-operator throughput and the hot-loop engine shootout;
/// E19 reports fault attribution and the telemetry-overhead gate).
pub fn run_one(id: &str) -> Option<Vec<Table>> {
    let one = |t: Table| Some(vec![t]);
    match id.to_ascii_uppercase().as_str() {
        "E1" => one(e_pdms::e1_reachability()),
        "E2" => one(e_pdms::e2_reformulation_pruning()),
        "E3" => one(e_pdms::e3_xml_mapping()),
        "E4" => one(e_mangrove::e4_instant_gratification()),
        "E5" => one(e_mangrove::e5_cleaning_policies()),
        "E6" => one(e_corpus::e6_matching_accuracy()),
        "E7" => one(e_corpus::e7_design_advisor()),
        "E8" => one(e_views::e8_updategrams()),
        "E9" => one(e_corpus::e9_stats_scaling()),
        "E10" => one(e_corpus::e10_join_effort()),
        "E11" => one(e_placement::e11_placement()),
        "E12" => one(e_chaos::e12_chaos()),
        "E13" => one(e_plancache::e13_plan_cache()),
        "E14" => Some(vec![e_obs::e14_calibration(), e_obs::e14_fetch_breakdown()]),
        "E15" => Some(e_feedback::e15_tables()),
        "E16" => one(e_durability::e16_durability()),
        "E17" => Some(e_dataflow::e17_tables()),
        "E18" => Some(e_vec::e18_tables()),
        "E19" => Some(e_monitor::e19_tables()),
        _ => None,
    }
}
