//! E15: closing the loop — adaptive statistics and q-error-triggered
//! re-planning.
//!
//! E14a measured the planner's calibration and found exactly the failure
//! mode its uniform-independence assumptions predict: q-error compounds
//! multiplicatively with step depth, because each misestimated join feeds
//! the next step a wrong intermediate cardinality *and* a wrong distinct
//! count for the joined variable. E15 measures the fix, on two workloads
//! that fail for two different reasons:
//!
//! * **E13** — the E14a workload verbatim. Its data is near-uniform, so
//!   the MCV-overlap estimator alone repairs the depth-2 blowup (p90
//!   40 → 1); the feedback loop correctly stays quiet (zero evictions,
//!   nothing learned) because there is nothing left to learn.
//! * **correlated** — each peer's `course` holds a block of seminar rows
//!   sharing one hot enrollment value, and the workload probes them by a
//!   constant title (`'Colloquium'`) whose rows all carry that value.
//!   Exact histograms cannot see the title↔enrollment correlation: the
//!   MCV estimate for the join after the constant filter is the
//!   *average* match rate, the actual is the *hot-row* match rate, and no
//!   amount of static statistics closes that gap. Execution feedback
//!   does: the first run of each plan observes its true per-pair
//!   selectivity, trips the re-plan threshold, evicts the plan, and
//!   writes the observation back; by the next pass the estimator is
//!   calibrated and the cache is stable again.
//!
//! Each workload is explained three ways against the same data — the
//! historical `uniform` estimator, the `mcv` estimator cold, and
//! `learned` after the feedback loop ran [`PASSES`] passes — and the last
//! table prices the loop: warm-pass latency with feedback on vs frozen
//! (`replan_q_error = None`), plans evicted, pairs learned.
//!
//! Everything except the timings is a pure function of the seed
//! (`REVERE_E15_SEED`, default the E13 seed). The success bar is enforced
//! in-process: post-feedback p90 q-error at every depth ≥ 2 must not
//! exceed the checked-in gate (`REVERE_E15_MAX_P90`, default 4.0) on
//! *both* workloads, so `report E15` doubles as the regression gate
//! `scripts/verify.sh` runs.

use crate::fixtures::network_with_rows;
use crate::table::Table;
use revere_pdms::{PdmsNetwork, Peer};
use revere_query::plan::{explain_analyze_with, Selectivity, Strategy};
use revere_query::GlavMapping;
use revere_storage::{Attribute, RelSchema, Relation, Value};
use revere_workload::{course_templates, Topology, TopologyKind};
use std::time::Instant;

use super::e_obs::calibration_rows;
use super::e_plancache::{PlanCacheConfig, PLANCACHE_SEED};

/// Passes over the template pool. Pass 1 is cold; by the last pass the
/// feedback loop has converged (observed selectivities stop changing, so
/// the stats epoch stops moving and plans stay cached).
pub const PASSES: usize = 3;

/// Seed for the E15 overlays and data (override: `REVERE_E15_SEED`).
pub fn e15_seed() -> u64 {
    std::env::var("REVERE_E15_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PLANCACHE_SEED)
}

/// The regression gate: maximum allowed post-feedback p90 q-error at any
/// step depth ≥ 2 (override: `REVERE_E15_MAX_P90`).
pub fn e15_max_p90() -> f64 {
    std::env::var("REVERE_E15_MAX_P90")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0)
}

/// The two E15 workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The E13 network and template pool (near-uniform data).
    E13,
    /// The correlated network and its constant-probe pool.
    Correlated,
}

impl Workload {
    fn label(self) -> &'static str {
        match self {
            Workload::E13 => "E13",
            Workload::Correlated => "correlated",
        }
    }
}

/// Everything one E15 run over one workload produces.
pub struct FeedbackOutcome {
    /// `(step depth, q-error)` under the historical uniform estimator.
    pub uniform: Vec<(usize, f64)>,
    /// Same, under the cold MCV-overlap estimator (no feedback).
    pub mcv: Vec<(usize, f64)>,
    /// Same, after the feedback loop ran the workload.
    pub learned: Vec<(usize, f64)>,
    /// Plans the feedback loop evicted as miscalibrated.
    pub evictions: usize,
    /// Column pairs with a learned overlap at the end of the run.
    pub learned_pairs: usize,
    /// The learned statistics, rendered deterministically (byte-identical
    /// across same-seed runs — asserted by tests).
    pub stats_dump: String,
    /// Mean query latency on the final (warm) pass, feedback on, µs.
    pub warm_feedback_us: f64,
    /// Same with the loop frozen (`replan_q_error = None`), µs.
    pub warm_frozen_us: f64,
}

/// The correlated overlay: the E13 topology, but each peer's rows hide a
/// title↔enrollment correlation. One row in six is a seminar sharing the
/// hot enrollment 100 (the first half of them titled `Colloquium`, the
/// probe target); every other row has a peer-unique enrollment. A
/// constant filter on `'Colloquium'` therefore selects rows whose join
/// column matches six times more often than the relation-wide average the
/// MCV overlap reports.
fn correlated_network(cfg: &PlanCacheConfig, seed: u64) -> PdmsNetwork {
    let topology = Topology::generate(TopologyKind::Random { extra: 2 }, cfg.peers, seed);
    let mut net = PdmsNetwork::new();
    net.options.max_depth = topology.n.max(8);
    for i in 0..topology.n {
        let n = cfg.rows_per_peer * (1 + i % 3);
        let hot = (n / 6).max(2);
        let probed = (hot / 2).max(1);
        let mut p = Peer::new(format!("P{i}"));
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![Attribute::text("title"), Attribute::int("enrollment")],
        ));
        for k in 0..n {
            let (title, e) = if k < probed {
                ("Colloquium".to_string(), 100)
            } else if k < hot {
                (format!("Workshop {k} at P{i}"), 100)
            } else {
                (format!("Course {k} at P{i}"), 1000 + (i as i64) * 1000 + k as i64)
            };
            r.insert(vec![Value::str(title), Value::Int(e)]);
        }
        p.add_relation(r);
        net.add_peer(p);
    }
    for (idx, (a, b)) in topology.edges.iter().enumerate() {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{idx}"),
                format!("P{a}"),
                format!("P{b}"),
                &format!("m(T, E) :- P{a}.course(T, E) ==> m(T, E) :- P{b}.course(T, E)"),
            )
            .expect("fixture mapping parses"),
        );
    }
    net
}

/// The correlated pool: `n` distinct constant-probe joins. Every template
/// probes the same hot title, so each learned column pair is observed in
/// one consistent context and the loop converges instead of flapping.
fn correlated_templates(peer: &str, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "q(U, E) :- {peer}.course(U, E), {peer}.course('Colloquium', E), E > {}",
                10 + i * 37
            )
        })
        .collect()
}

fn build_network(w: Workload, cfg: &PlanCacheConfig, seed: u64) -> PdmsNetwork {
    match w {
        Workload::E13 => {
            let topology =
                Topology::generate(TopologyKind::Random { extra: 2 }, cfg.peers, seed);
            network_with_rows(&topology, |i| cfg.rows_per_peer * (1 + i % 3))
        }
        Workload::Correlated => correlated_network(cfg, seed),
    }
}

/// Run one workload at the default (E13) scale.
pub fn feedback_outcome(w: Workload) -> FeedbackOutcome {
    // 48 rows/peer keeps every peer's row count divisible by six, so the
    // hot-row fraction (and thus the true per-pair selectivity) is
    // identical from both sides of every learned pair.
    let cfg = match w {
        Workload::E13 => PlanCacheConfig::default(),
        Workload::Correlated => PlanCacheConfig { rows_per_peer: 48, ..Default::default() },
    };
    feedback_outcome_with(w, cfg, e15_seed())
}

/// Run one workload at an explicit scale and seed (tests run smaller).
pub fn feedback_outcome_with(w: Workload, cfg: PlanCacheConfig, seed: u64) -> FeedbackOutcome {
    let templates = match w {
        Workload::E13 => course_templates("P0", cfg.templates),
        Workload::Correlated => correlated_templates("P0", cfg.templates),
    };

    // Collect `(depth, q-error)` for every executed step of every
    // reformulated disjunct, under one estimator, against one snapshot.
    let q_points = |net: &PdmsNetwork,
                    snapshot: &revere_storage::Catalog,
                    selectivity: Selectivity| {
        let mut points = Vec::new();
        for q in &templates {
            let out = net.query_str("P0", q).expect("template query runs");
            for d in &out.reformulation.union.disjuncts {
                let ea = explain_analyze_with(d, snapshot, Strategy::CostBased, selectivity)
                    .expect("disjunct evaluates");
                for (depth, q_err) in ea.q_errors().into_iter().enumerate() {
                    points.push((depth + 1, q_err));
                }
            }
        }
        points
    };

    // Before: a frozen network (no feedback), so the snapshot carries
    // base-relation statistics only. Uniform is the E14a estimator; mcv
    // is the adaptive estimator with nothing learned yet.
    let frozen = {
        let mut net = build_network(w, &cfg, seed);
        net.replan_q_error = None;
        net
    };
    let cold_snapshot = frozen.snapshot_all();
    let uniform = q_points(&frozen, &cold_snapshot, Selectivity::Uniform);
    let mcv = q_points(&frozen, &cold_snapshot, Selectivity::Adaptive);
    let warm_frozen_us = run_passes(&frozen, &templates);

    // After: the same workload through a feedback-enabled network.
    let net = build_network(w, &cfg, seed);
    let warm_feedback_us = run_passes(&net, &templates);
    let learned_snapshot = net.snapshot_all();
    let learned = q_points(&net, &learned_snapshot, Selectivity::Adaptive);

    FeedbackOutcome {
        uniform,
        mcv,
        learned,
        evictions: net.cache_stats().plan_evictions,
        learned_pairs: learned_snapshot.join_stats().len(),
        stats_dump: learned_snapshot.join_stats().dump(),
        warm_feedback_us,
        warm_frozen_us,
    }
}

/// Run [`PASSES`] passes over the template pool; return the mean per-query
/// latency of the final pass in µs.
fn run_passes(net: &PdmsNetwork, templates: &[String]) -> f64 {
    let mut last_us = 0u128;
    for pass in 0..PASSES {
        let t = Instant::now();
        for q in templates {
            net.query_str("P0", q).expect("workload query runs");
        }
        if pass + 1 == PASSES {
            last_us = t.elapsed().as_micros();
        }
    }
    last_us as f64 / templates.len().max(1) as f64
}

/// One calibration table: per depth, the three estimators side by side.
/// The regression gate lives here: post-feedback p90 q-error at every
/// depth ≥ 2 must stay within [`e15_max_p90`], so regenerating the report
/// *is* the regression check.
fn calibration_table(title: &str, o: &FeedbackOutcome) -> Table {
    let uniform = calibration_rows(&o.uniform);
    let mcv = calibration_rows(&o.mcv);
    let learned = calibration_rows(&o.learned);
    let gate = e15_max_p90();
    let mut t = Table::new(
        title,
        &[
            "step depth", "steps", "uniform p90", "uniform max", "mcv p90", "mcv max",
            "learned p90", "learned max", "learned within 2x",
        ],
    );
    for (i, u) in uniform.iter().enumerate() {
        let m = &mcv[i];
        let l = &learned[i];
        assert_eq!(u.depth, l.depth, "estimators disagree on plan depths");
        if l.depth >= 2 {
            assert!(
                l.p90 <= gate,
                "E15 regression: post-feedback p90 q-error {:.2} at depth {} exceeds the \
                 gate {gate} (REVERE_E15_MAX_P90)",
                l.p90,
                l.depth,
            );
        }
        t.row(vec![
            u.depth.to_string(),
            u.steps.to_string(),
            format!("{:.2}", u.p90),
            format!("{:.2}", u.max),
            format!("{:.2}", m.p90),
            format!("{:.2}", m.max),
            format!("{:.2}", l.p90),
            format!("{:.2}", l.max),
            format!("{:.0}%", l.within_2x * 100.0),
        ]);
    }
    t
}

/// E15 — all three tables, one run per workload.
pub fn e15_tables() -> Vec<Table> {
    let e13 = feedback_outcome(Workload::E13);
    let corr = feedback_outcome(Workload::Correlated);
    let a = calibration_table(
        "E15a: q-error by step depth on the E13 workload — uniform = historical estimator, \
         mcv = overlap histograms cold, learned = after execution feedback",
        &e13,
    );
    let b = calibration_table(
        "E15b: same, on the correlated workload (hot-title probes) — static histograms \
         cannot see the title/enrollment correlation; only feedback closes the gap",
        &corr,
    );
    let mut c = Table::new(
        "E15c: the price of the loop — warm-pass latency and feedback counters (timings are \
         wall-clock; counters are seed-deterministic)",
        &["workload", "feedback", "warm us/q", "plans evicted", "learned pairs"],
    );
    for (w, o) in [(Workload::E13, &e13), (Workload::Correlated, &corr)] {
        c.row(vec![
            w.label().into(),
            "frozen".into(),
            format!("{:.0}", o.warm_frozen_us),
            "0".into(),
            "0".into(),
        ]);
        c.row(vec![
            w.label().into(),
            "on".into(),
            format!("{:.0}", o.warm_feedback_us),
            o.evictions.to_string(),
            o.learned_pairs.to_string(),
        ]);
    }
    vec![a, b, c]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::e_obs::CalibrationRow;

    fn smoke(w: Workload) -> FeedbackOutcome {
        feedback_outcome_with(
            w,
            PlanCacheConfig { peers: 3, rows_per_peer: 12, templates: 8, queries: 16 },
            PLANCACHE_SEED,
        )
    }

    fn p90_at(rows: &[CalibrationRow], depth: usize) -> Option<f64> {
        rows.iter().find(|r| r.depth == depth).map(|r| r.p90)
    }

    #[test]
    fn mcv_alone_repairs_the_e13_workload_and_the_loop_stays_quiet() {
        let o = smoke(Workload::E13);
        let uniform = calibration_rows(&o.uniform);
        let learned = calibration_rows(&o.learned);
        assert!(uniform.len() >= 2, "expected multi-step plans");
        let u2 = p90_at(&uniform, 2).expect("depth-2 steps");
        let l2 = p90_at(&learned, 2).expect("depth-2 steps");
        assert!(u2 > e15_max_p90(), "uniform was already calibrated: {u2}");
        assert!(l2 <= e15_max_p90(), "{l2}");
        // Near-uniform data: exact histograms are already calibrated, so
        // nothing trips the threshold and nothing is learned.
        assert_eq!(o.evictions, 0);
        assert_eq!(o.learned_pairs, 0);
        assert!(o.stats_dump.is_empty());
    }

    #[test]
    fn feedback_repairs_the_correlated_workload() {
        let o = smoke(Workload::Correlated);
        let mcv = calibration_rows(&o.mcv);
        let learned = calibration_rows(&o.learned);
        let m2 = p90_at(&mcv, 2).expect("depth-2 steps");
        let l2 = p90_at(&learned, 2).expect("depth-2 steps");
        // Static histograms miss the correlation; the loop catches it.
        assert!(m2 > e15_max_p90(), "mcv was already calibrated: {m2}");
        assert!(l2 <= e15_max_p90(), "{l2}");
        assert!(l2 < m2, "feedback did not improve on mcv: {l2} vs {m2}");
        assert!(o.evictions > 0, "no plan was ever evicted");
        assert!(o.learned_pairs > 0, "nothing was learned");
        for r in learned.iter().chain(&mcv) {
            assert!(r.median >= 1.0 && r.max >= r.p90);
        }
    }

    #[test]
    fn learned_statistics_are_byte_identical_across_runs() {
        let a = smoke(Workload::Correlated);
        let b = smoke(Workload::Correlated);
        assert!(!a.stats_dump.is_empty());
        assert_eq!(a.stats_dump, b.stats_dump);
        assert_eq!(a.learned_pairs, b.learned_pairs);
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.uniform, b.uniform);
        assert_eq!(a.mcv, b.mcv);
        assert_eq!(a.learned, b.learned);
    }
}
