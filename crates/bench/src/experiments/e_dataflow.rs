//! E17: delta-dataflow IVM vs counting IVM vs invalidate-and-recompute.

use crate::fixtures::big_relation;
use crate::table::{f2, ms, Table};
use revere_pdms::{apply_updategrams, IvmStrategy, MaterializedView, PdmsNetwork, Peer, Updategram};
use revere_query::dataflow::{Circuit, DeltaBatch};
use revere_query::plan::plan_cq;
use revere_query::{eval_cq_bag_planned, parse_query};
use revere_storage::{Catalog, Value};
use std::time::Instant;

/// E17a — O(|Δ|) refresh: a circuit's per-update cost is a function of
/// the delta, not the base. The base relation grows 64×; the join-work
/// units and wall time per single-row update stay flat, while the
/// from-scratch recompute each update would otherwise trigger grows
/// linearly. "arranged/base" is the write amplification the circuit pays
/// for that: distinct tuples held in arrangements per base tuple.
pub fn e17_dataflow_scaling() -> Table {
    let mut t = Table::new(
        "E17a: circuit refresh cost vs base size (O(|\u{394}|) scaling)",
        &[
            "base rows", "updates", "work/update", "us/update", "recompute ms", "speedup",
            "arranged/base",
        ],
    );
    let updates = 64usize;
    for &base in &[1_000usize, 4_000, 16_000, 64_000] {
        let domain = (base / 10) as i64;
        let mut mirror = Catalog::new();
        mirror.register(big_relation("r", base, domain));
        mirror.register(big_relation("s", base / 5, domain));
        let q = parse_query("v(A, C) :- r(A, B), s(B, C)").unwrap();
        let plan = plan_cq(&q, &mirror);
        let mut circuit = Circuit::new(&q, &plan).unwrap();
        circuit.init_full(&mirror).unwrap();
        let work0 = circuit.work;

        // Single-row updates: fresh `a` values (no collision with the
        // base pattern), in-domain `b` values so every update joins.
        // Every fourth update retracts the previous insert. Batches are
        // prepared (and mirrored) up front so the timed loop measures
        // circuit refresh alone.
        let batches: Vec<DeltaBatch> = (0..updates)
            .map(|u| {
                let row = |i: usize| {
                    vec![
                        Value::Int(1_000_000 + i as i64),
                        Value::Int((i as i64 * 17 + 5) % domain),
                    ]
                };
                let mut batch = DeltaBatch::new();
                if u % 4 == 3 {
                    batch.add("r", row(u - 1), -1);
                    mirror.delete("r", &row(u - 1));
                } else {
                    batch.add("r", row(u), 1);
                    mirror.insert("r", row(u));
                }
                batch
            })
            .collect();
        let start = Instant::now();
        for batch in &batches {
            circuit.push(batch);
        }
        let inc = start.elapsed();
        let work_per_update = (circuit.work - work0) as f64 / updates as f64;

        // What each update would have cost without the circuit.
        let start = Instant::now();
        let fresh = eval_cq_bag_planned(&q, &plan, &mirror).unwrap();
        let recompute = start.elapsed();
        assert_eq!(circuit.output_bag().rows(), fresh.sorted().rows(), "circuit drifted");

        let per_update = inc.as_secs_f64() / updates as f64;
        t.row(vec![
            base.to_string(),
            updates.to_string(),
            f2(work_per_update),
            f2(per_update * 1e6),
            ms(recompute),
            f2(recompute.as_secs_f64() / per_update.max(1e-9)),
            f2(circuit.arranged_tuples() as f64 / (base + base / 5) as f64),
        ]);
    }
    t
}

/// A one-peer network holding the join's base data.
fn hub_network(base: usize, domain: i64) -> PdmsNetwork {
    let mut net = PdmsNetwork::new();
    let mut hub = Peer::new("Hub");
    hub.add_relation(big_relation("r", base, domain));
    hub.add_relation(big_relation("s", base / 5, domain));
    net.add_peer(hub);
    net
}

/// The E17b update stream: mostly inserts, one retraction.
fn feed_grams(domain: i64) -> Vec<Updategram> {
    let mut grams: Vec<Updategram> = (0..6u64)
        .map(|g| {
            Updategram::inserts(
                "Hub.r",
                (0..4u64)
                    .map(|i| {
                        let k = (g * 4 + i) as i64;
                        vec![Value::Int(1_000_000 + k), Value::Int((k * 17 + 5) % domain)]
                    })
                    .collect(),
            )
        })
        .collect();
    grams.push(Updategram::deletes(
        "Hub.r",
        vec![vec![Value::Int(1_000_000), Value::Int(5 % domain)]],
    ));
    grams
}

/// E17b — refresh latency under subscriber fan-out: the same update
/// stream served to N continuous queries by delta-dataflow circuits
/// ([`IvmStrategy::Dataflow`]), counting IVM ([`IvmStrategy::Counting`],
/// whose delta queries rescan the base), and invalidate-and-recompute
/// (every subscriber refreshes from scratch after every gram). Setup
/// (subscribe/initial refresh) is excluded; the table times the stream.
pub fn e17_subscriber_fanout() -> Table {
    let mut t = Table::new(
        "E17b: N subscribers \u{d7} update stream, maintenance strategy shootout",
        &[
            "subscribers", "grams", "dataflow ms", "counting ms", "recompute ms",
            "recompute/dataflow", "counting/dataflow",
        ],
    );
    let (base, domain) = (2_000usize, 200i64);
    let text = "q(A, C) :- Hub.r(A, B), Hub.s(B, C)";
    for &n in &[1usize, 10, 100] {
        let grams = feed_grams(domain);

        // Delta-dataflow circuits.
        let mut net = hub_network(base, domain);
        for i in 0..n {
            net.subscribe("Hub", &format!("sub{i}"), text, IvmStrategy::Dataflow).unwrap();
        }
        let start = Instant::now();
        for g in &grams {
            net.publish(g).unwrap();
        }
        let flow = start.elapsed();
        let flow_answers = net.subscription("sub0").unwrap().answers();

        // Counting IVM (delta queries over the full base, per subscriber).
        let mut net = hub_network(base, domain);
        for i in 0..n {
            net.subscribe("Hub", &format!("sub{i}"), text, IvmStrategy::Counting).unwrap();
        }
        let start = Instant::now();
        for g in &grams {
            net.publish(g).unwrap();
        }
        let count = start.elapsed();
        assert_eq!(
            net.subscription("sub0").unwrap().answers().rows(),
            flow_answers.rows(),
            "counting diverged from dataflow"
        );

        // Invalidate-and-recompute: every gram re-runs every subscriber.
        let net = hub_network(base, domain);
        let mut catalog = net.snapshot_all();
        let q = parse_query(text).unwrap();
        let mut views: Vec<MaterializedView> = (0..n)
            .map(|i| {
                let mut v = MaterializedView::new(format!("sub{i}"), q.clone());
                v.refresh_full(&catalog).unwrap();
                v
            })
            .collect();
        let start = Instant::now();
        for g in &grams {
            apply_updategrams(&mut catalog, std::slice::from_ref(g));
            for v in &mut views {
                v.refresh_full(&catalog).unwrap();
            }
        }
        let recompute = start.elapsed();
        assert_eq!(
            views[0].as_relation().rows(),
            flow_answers.rows(),
            "recompute diverged from dataflow"
        );

        t.row(vec![
            n.to_string(),
            grams.len().to_string(),
            ms(flow),
            ms(count),
            ms(recompute),
            f2(recompute.as_secs_f64() / flow.as_secs_f64().max(1e-9)),
            f2(count.as_secs_f64() / flow.as_secs_f64().max(1e-9)),
        ]);
    }
    t
}

/// Both E17 tables.
pub fn e17_tables() -> Vec<Table> {
    vec![e17_dataflow_scaling(), e17_subscriber_fanout()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17a_per_update_cost_is_flat_as_the_base_grows() {
        let t = e17_dataflow_scaling();
        let work_first: f64 = t.rows[0][2].parse().unwrap();
        let work_last: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        // 64× more base data, same per-update join work (± constants).
        assert!(
            work_last <= work_first * 4.0 + 8.0,
            "per-update work grew with the base: {work_first} -> {work_last}\n{t}"
        );
        // Against that flat cost, from-scratch recompute keeps growing.
        let speed_first: f64 = t.rows[0][5].parse().unwrap();
        let speed_last: f64 = t.rows.last().unwrap()[5].parse().unwrap();
        assert!(speed_last > speed_first, "speedup should grow with base size\n{t}");
    }

    #[test]
    fn e17b_dataflow_beats_recompute_at_scale() {
        let t = e17_subscriber_fanout();
        let last = t.rows.last().unwrap();
        assert_eq!(last[0], "100");
        let vs_recompute: f64 = last[5].parse().unwrap();
        assert!(
            vs_recompute >= 5.0,
            "dataflow should be \u{2265}5\u{d7} faster than recompute at 100 subscribers\n{t}"
        );
    }
}
