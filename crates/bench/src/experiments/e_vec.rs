//! E18: vectorized columnar execution vs the row engine.
//!
//! ROADMAP item 1 asks for a columnar batch engine "as fast as the
//! hardware allows" behind the existing deterministic facade. E18
//! measures it two ways:
//!
//! * **Per-operator throughput** — scan/materialize, filter, hash build,
//!   and hash probe over a synthetic fact table, row representation vs
//!   columnar ([`revere_storage::ColumnVec`] + selection bitmaps). Each
//!   operator pair computes the same result (asserted), so the ratio is
//!   pure representation cost: per-tuple clones and `Vec<&Value>` key
//!   materialization against typed column loops.
//! * **The E13 realized-bindings hot loop** — the plan-quality probe of
//!   the E13 experiment (evaluate every reformulated disjunct of the
//!   workload templates against the merged snapshot) re-run under
//!   [`ExecMode::Row`] and [`ExecMode::Vectorized`]. Both engines return
//!   byte-identical relations and step profiles (asserted per disjunct);
//!   only the wall-clock differs.
//!
//! Timings are wall-clock and machine-dependent; row counts, realized
//! bindings, and answer checksums are pure functions of the seed. The
//! full-scale report also asserts the hot-loop speedup stays above
//! `REVERE_E18_MIN_SPEEDUP` (default 5) — running the report IS the
//! perf-regression gate, like E15's calibration gate.

use crate::experiments::e_plancache::{plan_cache_network, PlanCacheConfig};
use crate::table::Table;
use revere_query::plan::{plan_cq_with, Strategy};
use revere_query::{
    eval_cq_bag_profiled_obs_mode, eval_cq_bindings_mode, ConjunctiveQuery, ExecMode, Plan,
};
use revere_storage::{Attribute, Catalog, ColumnarBatch, RelSchema, Relation, Tuple, Value};
use revere_util::obs::{Obs, SpanHandle};
use revere_workload::course_templates;
use std::collections::HashMap;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default rows in the synthetic fact table of the operator sweep.
pub const OPERATOR_ROWS: usize = 200_000;

/// Distinct join keys in the fact table (`rows / KEY_DOMAIN` matches per
/// probe on average).
const KEY_DOMAIN: i64 = 1024;

/// Hot-loop scale: the E13 overlay with 30× the data, where join work
/// dominates fixed query overheads.
pub fn hot_loop_config() -> PlanCacheConfig {
    PlanCacheConfig { peers: 6, rows_per_peer: 1200, templates: 8, queries: 0 }
}

/// Minimum acceptable hot-loop speedup (vectorized over row) asserted by
/// the full-scale report, overridable via `REVERE_E18_MIN_SPEEDUP`.
fn min_speedup() -> f64 {
    std::env::var("REVERE_E18_MIN_SPEEDUP")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(5.0)
}

/// Run `f` `reps` times, returning the minimum elapsed time and the (rep-
/// invariant, asserted) result.
fn time_best<R: PartialEq + std::fmt::Debug>(
    reps: usize,
    mut f: impl FnMut() -> R,
) -> (Duration, R) {
    let mut best: Option<(Duration, R)> = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = black_box(f());
        let dt = t.elapsed();
        match &best {
            Some((b, prev)) => {
                assert_eq!(prev, &r, "benchmark body is not deterministic");
                if dt < *b {
                    best = Some((dt, r));
                }
            }
            None => best = Some((dt, r)),
        }
    }
    best.expect("reps >= 1")
}

/// The synthetic fact table: `fact(key Int, tag Str, val Int)` with
/// `KEY_DOMAIN` join keys, 16 tags, and 300 distinct values.
fn fact_table(rows: usize) -> Relation {
    let mut r = Relation::new(RelSchema::new(
        "fact",
        vec![Attribute::int("key"), Attribute::text("tag"), Attribute::int("val")],
    ));
    for i in 0..rows {
        r.insert(vec![
            Value::Int((i as i64 * 37) % KEY_DOMAIN),
            Value::str(format!("t{}", i % 16)),
            Value::Int((i as i64 * 13) % 300),
        ]);
    }
    r
}

/// One operator measured both ways.
pub struct OperatorPoint {
    /// Operator name.
    pub name: &'static str,
    /// Input rows processed per repetition.
    pub rows: usize,
    /// Output cardinality (identical both ways, asserted).
    pub output: u64,
    /// Best-of-reps row-representation time.
    pub row_t: Duration,
    /// Best-of-reps columnar time.
    pub vec_t: Duration,
}

impl OperatorPoint {
    /// Vectorized speedup over the row representation.
    pub fn speedup(&self) -> f64 {
        self.row_t.as_secs_f64() / self.vec_t.as_secs_f64().max(1e-12)
    }
}

/// Measure scan, filter, hash build, and hash probe at `rows` scale.
/// Every pair is held to identical output cardinality.
pub fn operator_sweep(rows: usize, reps: usize) -> Vec<OperatorPoint> {
    let rel = fact_table(rows);
    let batch = ColumnarBatch::from_relation(&rel);
    let mut points = Vec::new();
    let mut push = |name, output_row: (Duration, u64), output_vec: (Duration, u64)| {
        assert_eq!(output_row.1, output_vec.1, "{name}: row and vectorized outputs diverged");
        points.push(OperatorPoint {
            name,
            rows,
            output: output_row.1,
            row_t: output_row.0,
            vec_t: output_vec.0,
        });
    };

    // Scan/materialize: clone every tuple vs pivot the relation into
    // typed columns (what the vectorized engine does once per query).
    push(
        "scan",
        time_best(reps, || rel.rows().to_vec().len() as u64),
        time_best(reps, || ColumnarBatch::from_relation(&rel).rows() as u64),
    );

    // Filter val = 7: per-tuple compare + clone of survivors vs one
    // `eq_const` bitmap and a gather of all three columns.
    let seven = Value::Int(7);
    push(
        "filter",
        time_best(reps, || {
            rel.iter().filter(|r| r[2] == seven).cloned().collect::<Vec<Tuple>>().len() as u64
        }),
        time_best(reps, || {
            let sel = batch.column(2).eq_const(&seven);
            let cols: Vec<_> = batch.columns().iter().map(|c| c.filter(&sel)).collect();
            cols[0].len() as u64
        }),
    );

    // Hash build on `key`: `Vec<&Value>` keys into tuple-ref buckets vs
    // `i64` keys into row-index buckets.
    push(
        "hash-build",
        time_best(reps, || {
            let mut index: HashMap<Vec<&Value>, Vec<&Tuple>> = HashMap::new();
            for row in rel.iter() {
                index.entry(vec![&row[0]]).or_default().push(row);
            }
            index.len() as u64
        }),
        time_best(reps, || {
            let keys = batch.column(0).as_ints().expect("int key column");
            let mut index: HashMap<i64, Vec<u32>> = HashMap::new();
            for (i, k) in keys.iter().enumerate() {
                index.entry(*k).or_default().push(i as u32);
            }
            index.len() as u64
        }),
    );

    // Probe with 4096 bindings: per-binding key vector + clone-extend of
    // each match vs typed lookups emitting index pairs, then one gather.
    let bindings: Vec<Tuple> =
        (0..4096).map(|i| vec![Value::Int((i as i64 * 7) % KEY_DOMAIN)]).collect();
    let row_index: HashMap<Vec<&Value>, Vec<&Tuple>> = {
        let mut index: HashMap<Vec<&Value>, Vec<&Tuple>> = HashMap::new();
        for row in rel.iter() {
            index.entry(vec![&row[0]]).or_default().push(row);
        }
        index
    };
    let vec_index: HashMap<i64, Vec<u32>> = {
        let keys = batch.column(0).as_ints().expect("int key column");
        let mut index: HashMap<i64, Vec<u32>> = HashMap::new();
        for (i, k) in keys.iter().enumerate() {
            index.entry(*k).or_default().push(i as u32);
        }
        index
    };
    let probe_keys: Vec<i64> = bindings
        .iter()
        .map(|b| match &b[0] {
            Value::Int(k) => *k,
            _ => unreachable!(),
        })
        .collect();
    push(
        "probe",
        time_best(reps, || {
            let mut out: Vec<Tuple> = Vec::new();
            for binding in &bindings {
                let key: Vec<&Value> = vec![&binding[0]];
                if let Some(matches) = row_index.get(&key) {
                    for m in matches {
                        let mut extended = binding.clone();
                        extended.push(m[2].clone());
                        out.push(extended);
                    }
                }
            }
            out.len() as u64
        }),
        time_best(reps, || {
            let mut probe_idx: Vec<u32> = Vec::new();
            let mut build_idx: Vec<u32> = Vec::new();
            for (p, k) in probe_keys.iter().enumerate() {
                if let Some(matches) = vec_index.get(k) {
                    for &m in matches {
                        probe_idx.push(p as u32);
                        build_idx.push(m);
                    }
                }
            }
            let vals = batch.column(2).gather(&build_idx);
            (vals.len().min(probe_idx.len())) as u64
        }),
    );
    points
}

/// One template shape of the hot loop, with its disjuncts evaluated under
/// both engines — the binding-realization kernel (the gated metric) and
/// the full evaluation including answer materialization (for context: the
/// answer copy-out allocates identical owned tuples in both engines, so
/// answer-heavy shapes dilute the end-to-end ratio toward 1).
pub struct HotLoopPoint {
    /// Template shape label.
    pub label: &'static str,
    /// Reformulated disjuncts evaluated.
    pub disjuncts: usize,
    /// Total realized bindings over all steps (identical both engines).
    pub bindings: usize,
    /// Total answer rows (identical both engines).
    pub answers: usize,
    /// Best-of-reps binding-realization time, row engine.
    pub row_t: Duration,
    /// Best-of-reps binding-realization time, vectorized engine.
    pub vec_t: Duration,
    /// Best-of-reps full evaluation (bindings + answers), row engine.
    pub row_full_t: Duration,
    /// Best-of-reps full evaluation, vectorized engine.
    pub vec_full_t: Duration,
}

impl HotLoopPoint {
    /// Vectorized speedup over the row engine on binding realization.
    pub fn speedup(&self) -> f64 {
        self.row_t.as_secs_f64() / self.vec_t.as_secs_f64().max(1e-12)
    }

    /// Vectorized speedup on the full evaluation (answers materialized).
    pub fn full_speedup(&self) -> f64 {
        self.row_full_t.as_secs_f64() / self.vec_full_t.as_secs_f64().max(1e-12)
    }
}

fn eval_mode(
    d: &ConjunctiveQuery,
    plan: &Plan,
    snapshot: &Catalog,
    mode: ExecMode,
) -> (Relation, Vec<usize>) {
    let (rel, profiles) = eval_cq_bag_profiled_obs_mode(
        d,
        plan,
        snapshot,
        &Obs::disabled(),
        &SpanHandle::none(),
        mode,
    )
    .expect("disjunct evaluates");
    (rel, profiles.iter().map(|p| p.bindings).collect())
}

/// The hot-loop kernel: realize the bindings of one disjunct (join
/// pipeline + comparisons, no answer copy-out) and return the total
/// realized bindings — what the E13 q-error feedback actually consumes.
fn bindings_mode(d: &ConjunctiveQuery, plan: &Plan, snapshot: &Catalog, mode: ExecMode) -> u64 {
    let (_, profiles) =
        eval_cq_bindings_mode(d, plan, snapshot, &Obs::disabled(), &SpanHandle::none(), mode)
            .expect("disjunct evaluates");
    profiles.iter().map(|p| p.bindings as u64).sum()
}

/// Re-run the E13 realized-bindings probe under both engines: every
/// reformulated disjunct of the workload templates, planned cost-based,
/// evaluated against the merged snapshot. Grouped by template shape so
/// the speedup is attributable to the join pattern.
pub fn hot_loop_sweep_with(cfg: PlanCacheConfig, reps: usize) -> Vec<HotLoopPoint> {
    let net = plan_cache_network(&cfg);
    let snapshot = net.snapshot_all();
    let labels = ["scan E>t", "scan E<t", "self-join on E", "const-probe join"];
    let mut groups: Vec<Vec<(ConjunctiveQuery, Plan)>> = vec![Vec::new(); labels.len()];
    for (i, text) in course_templates("P0", cfg.templates).iter().enumerate() {
        let out = net.query_str("P0", text).expect("template query runs");
        for d in &out.reformulation.union.disjuncts {
            let plan = plan_cq_with(d, &snapshot, Strategy::CostBased);
            groups[i % labels.len()].push((d.clone(), plan));
        }
    }
    labels
        .iter()
        .zip(groups)
        .map(|(label, work)| {
            // Correctness once, outside the timed loops: byte-identical
            // relations (including row order) and identical per-step
            // binding traces from both engines.
            let (mut bindings, mut answers) = (0usize, 0usize);
            for (d, plan) in &work {
                let (row_rel, row_steps) = eval_mode(d, plan, &snapshot, ExecMode::Row);
                let (vec_rel, vec_steps) = eval_mode(d, plan, &snapshot, ExecMode::Vectorized);
                assert_eq!(row_rel.rows(), vec_rel.rows(), "{label}: engines diverged on {d}");
                assert_eq!(row_steps, vec_steps, "{label}: step traces diverged on {d}");
                for mode in [ExecMode::Row, ExecMode::Vectorized] {
                    assert_eq!(
                        bindings_mode(d, plan, &snapshot, mode),
                        row_steps.iter().sum::<usize>() as u64,
                        "{label}: {mode} bindings kernel diverged from full eval on {d}"
                    );
                }
                bindings += row_steps.iter().sum::<usize>();
                answers += row_rel.len();
            }
            let run = |mode: ExecMode| {
                time_best(reps, || {
                    work.iter()
                        .map(|(d, plan)| bindings_mode(d, plan, &snapshot, mode))
                        .sum::<u64>()
                })
            };
            let run_full = |mode: ExecMode| {
                time_best(reps, || {
                    work.iter()
                        .map(|(d, plan)| eval_mode(d, plan, &snapshot, mode).0.len() as u64)
                        .sum::<u64>()
                })
            };
            let (row_t, _) = run(ExecMode::Row);
            let (vec_t, _) = run(ExecMode::Vectorized);
            let (row_full_t, _) = run_full(ExecMode::Row);
            let (vec_full_t, _) = run_full(ExecMode::Vectorized);
            HotLoopPoint {
                label,
                disjuncts: work.len(),
                bindings,
                answers,
                row_t,
                vec_t,
                row_full_t,
                vec_full_t,
            }
        })
        .collect()
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// E18a — per-operator throughput, row vs columnar representation.
pub fn e18_operators() -> Table {
    let mut t = Table::new(
        "E18a: per-operator throughput, row vs vectorized (fact table, 200k rows)",
        &["operator", "rows", "output", "row ms", "vec ms", "row Melem/s", "vec Melem/s", "speedup"],
    );
    for p in operator_sweep(OPERATOR_ROWS, 3) {
        let melems = |d: Duration| p.rows as f64 / d.as_secs_f64().max(1e-12) / 1e6;
        t.row(vec![
            p.name.to_string(),
            p.rows.to_string(),
            p.output.to_string(),
            ms(p.row_t),
            ms(p.vec_t),
            format!("{:.0}", melems(p.row_t)),
            format!("{:.0}", melems(p.vec_t)),
            format!("{:.1}x", p.speedup()),
        ]);
    }
    t
}

/// E18b — the E13 realized-bindings hot loop under both engines. The
/// gated metric ("bind" columns, `REVERE_E18_MIN_SPEEDUP`) is binding
/// realization via [`eval_cq_bindings_mode`]: the join pipeline and
/// comparison filters, the part the engines actually differ on and the
/// part the E13 q-error loop consumes. The "full" columns include answer
/// materialization — an identical owned-tuple copy-out in both engines —
/// for end-to-end context.
pub fn e18_hot_loop() -> Table {
    let points = hot_loop_sweep_with(hot_loop_config(), 3);
    let mut t = Table::new(
        "E18b: E13 realized-bindings hot loop, row vs vectorized engine (6 peers, 1200-3600 rows/peer)",
        &[
            "template",
            "disjuncts",
            "bindings",
            "answers",
            "bind row ms",
            "bind vec ms",
            "bind speedup",
            "full row ms",
            "full vec ms",
            "full speedup",
        ],
    );
    let mut totals = [Duration::ZERO; 4];
    for p in &points {
        totals[0] += p.row_t;
        totals[1] += p.vec_t;
        totals[2] += p.row_full_t;
        totals[3] += p.vec_full_t;
        t.row(vec![
            p.label.to_string(),
            p.disjuncts.to_string(),
            p.bindings.to_string(),
            p.answers.to_string(),
            ms(p.row_t),
            ms(p.vec_t),
            format!("{:.1}x", p.speedup()),
            ms(p.row_full_t),
            ms(p.vec_full_t),
            format!("{:.1}x", p.full_speedup()),
        ]);
    }
    let total_speedup = totals[0].as_secs_f64() / totals[1].as_secs_f64().max(1e-12);
    let total_full = totals[2].as_secs_f64() / totals[3].as_secs_f64().max(1e-12);
    t.row(vec![
        "TOTAL".to_string(),
        points.iter().map(|p| p.disjuncts).sum::<usize>().to_string(),
        points.iter().map(|p| p.bindings).sum::<usize>().to_string(),
        points.iter().map(|p| p.answers).sum::<usize>().to_string(),
        ms(totals[0]),
        ms(totals[1]),
        format!("{total_speedup:.1}x"),
        ms(totals[2]),
        ms(totals[3]),
        format!("{total_full:.1}x"),
    ]);
    assert!(
        total_speedup >= min_speedup(),
        "E18 hot-loop speedup regressed: {total_speedup:.2}x < {:.2}x \
         (override with REVERE_E18_MIN_SPEEDUP)",
        min_speedup()
    );
    t
}

/// Both E18 tables.
pub fn e18_tables() -> Vec<Table> {
    vec![e18_operators(), e18_hot_loop()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_agree_and_report() {
        // The parity asserts live inside operator_sweep; a small scale
        // keeps the smoke fast.
        let points = operator_sweep(20_000, 1);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(p.output > 0, "{} produced nothing", p.name);
        }
    }

    #[test]
    fn hot_loop_is_deterministic_and_engines_agree() {
        let cfg = PlanCacheConfig { peers: 3, rows_per_peer: 60, templates: 4, queries: 0 };
        // Engine-equality asserts live inside the sweep (full answers and
        // step traces per disjunct, plus bindings-kernel counts).
        let a = hot_loop_sweep_with(cfg, 1);
        let b = hot_loop_sweep_with(cfg, 1);
        assert!(a.iter().map(|p| p.bindings).sum::<usize>() > 0, "hot loop realized nothing");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bindings, y.bindings);
            assert_eq!(x.answers, y.answers);
            assert_eq!(x.disjuncts, y.disjuncts);
        }
    }
}
