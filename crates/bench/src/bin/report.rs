//! Regenerate every experiment table of EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run --release -p revere-bench --bin report          # all
//!   cargo run --release -p revere-bench --bin report E6       # one
//!   cargo run --release -p revere-bench --bin report --markdown

use revere_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let tables = if ids.is_empty() {
        experiments::run_all()
    } else {
        ids.iter()
            .flat_map(|id| {
                experiments::run_one(id)
                    .unwrap_or_else(|| panic!("unknown experiment {id:?} (use E1..E18)"))
            })
            .collect()
    };
    for t in tables {
        if markdown {
            println!("{}", t.markdown());
        } else {
            println!("{t}\n");
        }
    }
}
