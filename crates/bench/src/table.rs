//! ASCII/markdown result tables for the `report` binary.

use std::fmt;

/// A result table: a title, column headers and string rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id + description, e.g. `E1: PDMS reachability`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each as long as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in {}", self.title);
        self.rows.push(cells);
        self
    }

    /// Render as a GitHub-flavored markdown table (for EXPERIMENTS.md).
    pub fn markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a duration in milliseconds with 2 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ascii_and_markdown() {
        let mut t = Table::new("E0: smoke", &["n", "value"]);
        t.row(vec!["1".into(), "a".into()]);
        t.row(vec!["2".into(), "bb".into()]);
        let ascii = t.to_string();
        assert!(ascii.contains("== E0: smoke =="));
        assert!(ascii.contains("| 2 | bb"));
        let md = t.markdown();
        assert!(md.contains("| n | value |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("t", &["a", "b"]).row(vec!["only".into()]);
    }
}
