//! Shared fixtures for experiments and benches.

use revere_pdms::{PdmsNetwork, Peer};
use revere_query::GlavMapping;
use revere_storage::{Attribute, RelSchema, Relation, Value};
use revere_workload::{Topology, TopologyKind};

/// Build a PDMS over `topology` where every peer `Pi` stores one
/// `course(title, enrollment)` relation with `rows_per_peer` rows, and
/// every topology edge is a GLAV mapping between the neighbors' course
/// relations.
pub fn course_network(kind: TopologyKind, n: usize, rows_per_peer: usize, seed: u64) -> PdmsNetwork {
    let topology = Topology::generate(kind, n, seed);
    network_from_topology(&topology, rows_per_peer)
}

/// Same, from an explicit topology.
pub fn network_from_topology(topology: &Topology, rows_per_peer: usize) -> PdmsNetwork {
    network_with_rows(topology, |_| rows_per_peer)
}

/// Same, with a per-peer row count. Heterogeneous data sizes are what
/// make join-order choices observable (E13): with uniform sizes every
/// ordering heuristic degenerates to the same tie-break.
pub fn network_with_rows(topology: &Topology, rows_for: impl Fn(usize) -> usize) -> PdmsNetwork {
    let mut net = PdmsNetwork::new();
    // The transitive closure must span the whole graph: bound the
    // rule-goal depth by the topology size, not the default.
    net.options.max_depth = topology.n.max(8);
    for i in 0..topology.n {
        let mut p = Peer::new(format!("P{i}"));
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![Attribute::text("title"), Attribute::int("enrollment")],
        ));
        for k in 0..rows_for(i) {
            r.insert(vec![
                Value::str(format!("Course {k} at P{i}")),
                Value::Int((10 + (i * 7 + k * 13) % 300) as i64),
            ]);
        }
        p.add_relation(r);
        net.add_peer(p);
    }
    for (idx, (a, b)) in topology.edges.iter().enumerate() {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{idx}"),
                format!("P{a}"),
                format!("P{b}"),
                &format!("m(T, E) :- P{a}.course(T, E) ==> m(T, E) :- P{b}.course(T, E)"),
            )
            .expect("fixture mapping parses"),
        );
    }
    net
}

/// A big binary relation `r(a, b)` for view-maintenance experiments.
pub fn big_relation(name: &str, rows: usize, domain: i64) -> Relation {
    let mut r = Relation::new(RelSchema::new(
        name,
        vec![Attribute::int("a"), Attribute::int("b")],
    ));
    for i in 0..rows {
        r.insert(vec![
            Value::Int((i as i64 * 31) % domain),
            Value::Int((i as i64 * 17 + 5) % domain),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn course_network_is_queryable() {
        let net = course_network(TopologyKind::Chain, 3, 2, 0);
        let out = net.query_str("P2", "q(T, E) :- P2.course(T, E)").unwrap();
        assert_eq!(out.answers.len(), 6);
    }

    #[test]
    fn big_relation_shape() {
        let r = big_relation("r", 100, 37);
        assert_eq!(r.len(), 100);
        assert!(r.iter().all(|t| t[0].as_int().unwrap() < 37));
    }
}
