//! Experiment harness for the REVERE reproduction.
//!
//! The paper is a vision paper with no evaluation tables; DESIGN.md §2
//! derives ten experiments (E1–E10) from its quantifiable claims. Each
//! experiment here regenerates one table of `EXPERIMENTS.md`; the `report`
//! binary runs them all. Criterion benches under `benches/` time the
//! hot paths the experiments exercise.
//!
//! Everything is seeded; `report` output is reproducible run to run
//! (timings vary, shapes do not).

pub mod experiments;
pub mod fixtures;
pub mod table;

pub use table::Table;
