#!/usr/bin/env bash
# Tier-1 verification gate: the whole workspace must build, test, and
# compile its benches fully offline (the workspace has zero external
# dependencies by design — see README "Building").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo bench --no-run --offline

# Chaos gate: the fault-injection suite must hold under several fixed
# seeds (its assertions are seed-independent invariants — determinism,
# reported gaps, exactly-once application). Override the seed set with
# REVERE_CHAOS_SEEDS="1 2 3" scripts/verify.sh
for seed in ${REVERE_CHAOS_SEEDS:-7 42 1003}; do
    echo "chaos gate: seed $seed"
    REVERE_CHAOS_SEED="$seed" cargo test -q --offline -p revere --test chaos_pdms
done

# Differential gate: the planned evaluator must agree with the naive
# oracle (answers and errors) and every rewriting layer must stay
# containment-sound, under several fixed seeds. Override the seed set
# with REVERE_DIFF_SEEDS="1 2 3" scripts/verify.sh
for seed in ${REVERE_DIFF_SEEDS:-1 2 3}; do
    echo "differential gate: seed $seed"
    REVERE_DIFF_SEED="$seed" cargo test -q --offline -p revere --test differential_query
done

# E13 smoke: the plan/reformulation cache sweep must run end to end and
# report a table (its internal asserts cross-check cached vs uncached
# answers and cost-based vs greedy join work).
cargo run --release --offline -p revere-bench --bin report E13
echo "verify: OK"
