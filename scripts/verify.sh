#!/usr/bin/env bash
# Tier-1 verification gate: the whole workspace must build, test, and
# compile its benches fully offline (the workspace has zero external
# dependencies by design — see README "Building").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo bench --no-run --offline
echo "verify: OK"
