#!/usr/bin/env bash
# Tier-1 verification gate: the whole workspace must build, test, and
# compile its benches fully offline (the workspace has zero external
# dependencies by design — see README "Building").
set -euo pipefail
cd "$(dirname "$0")/.."

RUSTFLAGS="-D warnings" cargo build --release --offline
cargo test -q --offline
cargo bench --no-run --offline

# Chaos gate: the fault-injection suite must hold under several fixed
# seeds (its assertions are seed-independent invariants — determinism,
# reported gaps, exactly-once application). Override the seed set with
# REVERE_CHAOS_SEEDS="1 2 3" scripts/verify.sh
for seed in ${REVERE_CHAOS_SEEDS:-7 42 1003}; do
    echo "chaos gate: seed $seed"
    REVERE_CHAOS_SEED="$seed" cargo test -q --offline -p revere --test chaos_pdms
done

# Differential gate: the planned evaluator must agree with the naive
# oracle (answers and errors) and every rewriting layer must stay
# containment-sound, under several fixed seeds. Override the seed set
# with REVERE_DIFF_SEEDS="1 2 3" scripts/verify.sh
for seed in ${REVERE_DIFF_SEEDS:-1 2 3}; do
    echo "differential gate: seed $seed"
    REVERE_DIFF_SEED="$seed" cargo test -q --offline -p revere --test differential_query
done

# Observability gate: a fixed seed must produce a byte-identical Chrome
# trace across runs, and tracing must never change answers. Held under
# several seeds; override with REVERE_TRACE_SEEDS="1 2 3" scripts/verify.sh
for seed in ${REVERE_TRACE_SEEDS:-1003 7 42}; do
    echo "trace gate: seed $seed"
    REVERE_TRACE_SEED="$seed" cargo test -q --offline -p revere --test trace_obs
done

# Crash-recovery gate: the durability suite must hold under several
# fixed seeds — WAL round-trips, torn-tail recovery, ack-driven log
# truncation, inbox compaction, and the crash-convergence invariant (a
# run with mid-stream peer crashes converges byte-identically to its
# crash-free twin, every gram applied exactly once). Override the seed
# set with REVERE_CRASH_SEEDS="1 2 3" scripts/verify.sh
for seed in ${REVERE_CRASH_SEEDS:-7 42 1003}; do
    echo "crash-recovery gate: seed $seed"
    REVERE_CRASH_SEED="$seed" cargo test -q --offline -p revere --test durability_wal
done

# IVM differential gate: after every updategram in a seeded adversarial
# stream (duplicate inserts, multi-copy deletes, absent deletes, bulk
# dataset joins/leaves), the delta-dataflow circuit and the counting
# maintainer must both equal a from-scratch recompute of their defining
# query, byte for byte. Override the seed set with
# REVERE_IVM_SEEDS="1 2 3" scripts/verify.sh
for seed in ${REVERE_IVM_SEEDS:-7 42 1003}; do
    echo "ivm differential gate: seed $seed"
    REVERE_IVM_SEED="$seed" cargo test -q --offline -p revere --test differential_ivm
done

# Vectorized differential gate: the columnar engine must stay
# byte-identical to the row engine (rows, row order, step profiles,
# errors, and the bindings-only kernel) and sort-identical to the naive
# oracle, across the whole morsel sweep, under several fixed seeds.
# Override the seed set with REVERE_VEC_SEEDS="1 2 3" scripts/verify.sh
for seed in ${REVERE_VEC_SEEDS:-1 2 3}; do
    echo "vectorized differential gate: seed $seed"
    REVERE_VEC_SEED="$seed" cargo test -q --offline -p revere --test differential_vec
done

# E16 smoke: the durability experiment must run end to end — its sweep
# asserts byte-identical convergence and suffix-bounded recovery for
# every built-in crash seed, and reports recovery latency and
# stable-storage amplification.
cargo run --release --offline -p revere-bench --bin report E16

# E13 smoke: the plan/reformulation cache sweep must run end to end and
# report a table (its internal asserts cross-check cached vs uncached
# answers and cost-based vs greedy join work).
cargo run --release --offline -p revere-bench --bin report E13

# E14 smoke: the observability experiment must run end to end — its
# sweep asserts the traced run returns exactly the untraced answers.
cargo run --release --offline -p revere-bench --bin report E14

# E15 gate: the adaptive-statistics experiment asserts in-process that
# post-feedback p90 q-error at every step depth >= 2 stays within the
# checked-in threshold, on both its workloads — running the report IS
# the calibration regression gate. Override the seed with
# REVERE_E15_SEED=... and the threshold with REVERE_E15_MAX_P90=...
echo "calibration gate: seed ${REVERE_E15_SEED:-1013}, max p90 ${REVERE_E15_MAX_P90:-4.0}"
cargo run --release --offline -p revere-bench --bin report E15

# E17 smoke: the delta-dataflow experiment must run end to end — E17a
# asserts the circuit's per-update work stays flat across a 64× base-size
# sweep and that its output matches recompute; E17b cross-checks the
# dataflow, counting, and invalidate-and-recompute subscription paths
# against each other under fan-out.
cargo run --release --offline -p revere-bench --bin report E17

# E18 gate: the vectorized-execution experiment asserts in-process that
# the columnar engine beats the row engine by at least
# REVERE_E18_MIN_SPEEDUP (default 5×) on the E13 realized-bindings hot
# loop, with per-disjunct byte-identity between the engines — running
# the report IS the perf-regression gate, like E15's calibration gate.
echo "vectorized perf gate: min speedup ${REVERE_E18_MIN_SPEEDUP:-5.0}"
cargo run --release --offline -p revere-bench --bin report E18

# Monitor gate: the health-monitor suite must hold under several fixed
# seeds — exact fault attribution within the detection bound, answer
# invariance under scraping (twin runs byte-identical), the flight
# recorder's fixed memory over a 10x E13 trace, and byte-deterministic
# dashboards/event logs/rollups. Override the seed set with
# REVERE_E19_SEEDS="1 2 3" scripts/verify.sh
for seed in ${REVERE_E19_SEEDS:-1003 7 42}; do
    echo "monitor gate: seed $seed"
    REVERE_E19_SEED="$seed" cargo test -q --offline -p revere --test monitor_health
done

# E19 gate: the telemetry experiment asserts in-process that the monitor's
# flagged set equals the injected degraded-peer set (zero misses, zero
# false positives), that every detection lands within
# REVERE_E19_MAX_DETECT_TICKS (default 8), and that the production
# observability profile (5% sampled tracing + flight recorder + windowed
# metrics) costs at most REVERE_E19_MAX_OVERHEAD_PCT (default 50%) over
# Obs::disabled() — running the report IS the gate, like E15/E18.
echo "telemetry gate: seed ${REVERE_E19_SEED:-1003}, max detect ${REVERE_E19_MAX_DETECT_TICKS:-8} ticks, max overhead ${REVERE_E19_MAX_OVERHEAD_PCT:-50}%"
cargo run --release --offline -p revere-bench --bin report E19
echo "verify: OK"
