//! DElearning: the paper's running example (Examples 1.1, 3.1; Figures 2-4).
//!
//! An on-line education company weaves distance-learning courses from
//! universities worldwide into one virtual catalog — without a global
//! mediated schema. We build the Figure 2 network (Stanford, Oxford, MIT,
//! Tsinghua, Roma, Berkeley), run the Figure 4 XML mapping, then let
//! Trento join by mapping only to its most-similar peer (Roma), and ask
//! for ancient-history courses from every peer's local vocabulary.
//!
//! Run with: `cargo run --example delearning`

use revere::pdms::xmlmap::figure4_mapping;
use revere::prelude::*;
use std::collections::HashMap;

/// Per-university vocabulary: (peer, relation, title attr, enrollment attr).
const PEERS: &[(&str, &str)] = &[
    ("Stanford", "class"),
    ("Oxford", "paper_course"),
    ("MIT", "subject"),
    ("Tsinghua", "kecheng"),
    ("Roma", "corso"),
    ("Berkeley", "course"),
];

fn main() {
    // ------------------------------------------------------------------
    // Figure 3 + Figure 4: the XML mapping template, verbatim.
    // ------------------------------------------------------------------
    let berkeley_xml = revere::xml::parse(
        "<schedule><college><name>Berkeley</name>\
           <dept><name>History</name>\
             <course><title>Ancient Greece</title><size>40</size></course>\
             <course><title>Fall of Rome</title><size>25</size></course>\
           </dept>\
         </college></schedule>",
    )
    .expect("Berkeley document parses");
    revere::xml::dtd::berkeley_schema()
        .validate(&berkeley_xml)
        .expect("conforms to the Figure 3 Berkeley schema");

    let mapping = figure4_mapping();
    let mit_catalog = mapping
        .apply(&HashMap::from([("Berkeley.xml".to_string(), berkeley_xml)]))
        .expect("Figure 4 mapping applies");
    revere::xml::dtd::mit_schema()
        .validate(&mit_catalog)
        .expect("output conforms to the Figure 3 MIT schema");
    println!("Figure 4 mapping output (Berkeley schedule as MIT catalog):");
    println!("{}", revere::xml::to_pretty_string(&mit_catalog));

    // ------------------------------------------------------------------
    // Figure 2: the six-university PDMS.
    // ------------------------------------------------------------------
    let mut net = PdmsNetwork::new();
    let history_courses: &[(&str, &str, i64)] = &[
        ("Stanford", "Early Rome Seminar", 18),
        ("Oxford", "Greats: Ancient History", 30),
        ("MIT", "Classical Civilizations", 45),
        ("Tsinghua", "History of the Silk Road", 60),
        ("Roma", "Storia Romana", 80),
        ("Berkeley", "Ancient Greece", 40),
    ];
    for ((peer, rel), (_, title, size)) in PEERS.iter().zip(history_courses) {
        let mut p = Peer::new(*peer);
        let mut r = Relation::new(RelSchema::new(
            *rel,
            vec![
                revere::storage::Attribute::text("title"),
                revere::storage::Attribute::int("enrollment"),
            ],
        ));
        r.insert(vec![Value::str(*title), Value::Int(*size)]);
        p.add_relation(r);
        net.add_peer(p);
    }
    // The Figure 2 edges, each a GLAV mapping between neighbors.
    let edges = [
        ("Stanford", "class", "Oxford", "paper_course"),
        ("Oxford", "paper_course", "MIT", "subject"),
        ("Stanford", "class", "Tsinghua", "kecheng"),
        ("Tsinghua", "kecheng", "Roma", "corso"),
        ("Stanford", "class", "Berkeley", "course"),
        ("MIT", "subject", "Berkeley", "course"),
    ];
    for (i, (src, srel, tgt, trel)) in edges.iter().enumerate() {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{i}"),
                *src,
                *tgt,
                &format!("m(T, E) :- {src}.{srel}(T, E) ==> m(T, E) :- {tgt}.{trel}(T, E)"),
            )
            .expect("edge mapping parses"),
        );
    }
    println!(
        "Figure 2 network: {} peers, {} mappings (pairwise would need {})",
        net.len(),
        net.mapping_count(),
        net.len() * (net.len() - 1) / 2
    );

    // A DElearning customer shops from Roma, in Italian vocabulary.
    let out = net
        .query_str("Roma", "q(Titolo, Iscritti) :- Roma.corso(Titolo, Iscritti)")
        .expect("query runs");
    println!("\nquery at Roma (local vocabulary) reaches the whole coalition:");
    println!("{}", out.answers);
    assert_eq!(out.answers.len(), 6, "all six universities' courses");
    println!(
        "reformulation: {} disjuncts, {} nodes expanded, {} pruned by containment, peers {:?}",
        out.reformulation.union.len(),
        out.reformulation.nodes_expanded,
        out.reformulation.pruned_by_containment,
        out.reformulation.peers_reached
    );

    // ------------------------------------------------------------------
    // Example 3.1: Trento joins by mapping to its most similar peer.
    // ------------------------------------------------------------------
    let mut trento = Peer::new("Trento");
    let mut r = Relation::new(RelSchema::new(
        "insegnamento",
        vec![
            revere::storage::Attribute::text("titolo"),
            revere::storage::Attribute::int("iscritti"),
        ],
    ));
    r.insert(vec![Value::str("Arte Etrusca"), Value::Int(15)]);
    trento.add_relation(r);
    net.add_peer(trento);
    net.add_mapping(
        GlavMapping::parse(
            "m_trento",
            "Trento",
            "Roma",
            "m(T, E) :- Trento.insegnamento(T, E) ==> m(T, E) :- Roma.corso(T, E)",
        )
        .expect("Trento mapping parses"),
    );
    let out = net
        .query_str("MIT", "q(T, E) :- MIT.subject(T, E)")
        .expect("query runs");
    println!("\nafter Trento joins with ONE mapping (to Roma), a query at MIT sees it:");
    println!("{}", out.answers);
    assert_eq!(out.answers.len(), 7);
    println!("delearning OK");
}
