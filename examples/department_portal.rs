//! Department portal: MANGROVE end to end on generated pages (§2).
//!
//! Generates a department web site (course pages, home pages, and two
//! stale directories with injected dirt), publishes everything, then
//! renders the paper's three instant-gratification applications — showing
//! how each one's cleaning policy copes with the dirty data, and how much
//! fresher publish-time ingestion is than a periodic crawl.
//!
//! Run with: `cargo run --example department_portal`

use revere::prelude::*;

fn main() {
    let gen = PageGenerator {
        seed: 2003,
        courses: 6,
        people: 5,
        dirt: revere::workload::DirtSpec { conflict_prob: 0.4, secondary_pages: 2 },
    };
    let pages = gen.generate();
    println!("generated {} pages (incl. 2 dirty directories)", pages.len());

    // Publish everything into MANGROVE.
    let mut mangrove = Mangrove::new(MangroveSchema::department());
    let mut lies = 0;
    for page in &pages {
        let report = mangrove.publish(&page.url, &page.html);
        assert!(report.issues.is_empty(), "generator emits clean annotations");
        lies += page.lies.len();
    }
    println!(
        "published {} triples from {} sources ({} deliberately wrong facts)",
        mangrove.store.len(),
        pages.len(),
        lies
    );

    // The three applications, each with its own integrity policy.
    println!("\n== course calendar (freshest-wins policy) ==");
    println!("{}", CourseCalendar::default().render(&mangrove.store));

    println!("== who's who (take-all policy: conflicts shown to the user) ==");
    println!("{}", WhosWho::default().render(&mangrove.store));

    println!("== phone directory (prefer-own-source policy) ==");
    let own = PhoneDirectory::default().render(&mangrove.store);
    println!("{own}");

    // Show why the policy matters: a majority-vote directory is fooled by
    // the stale directories when they agree with each other.
    let majority = PhoneDirectory { policy: CleaningPolicy::Majority }.render(&mangrove.store);
    let truth: std::collections::BTreeMap<&str, &Value> = pages
        .iter()
        .flat_map(|p| p.truth.iter())
        .filter(|(_, pred, _)| pred == "person.phone")
        .map(|(s, _, v)| (s.as_str(), v))
        .collect();
    let score = |rel: &Relation| {
        rel.iter()
            .filter(|row| {
                truth
                    .get(row[0].to_string().as_str())
                    .is_some_and(|v| **v == row[2])
            })
            .count()
    };
    println!(
        "correct phones: prefer-own-source {}/{} vs majority {}/{}",
        score(&own),
        own.len(),
        score(&majority),
        majority.len()
    );
    assert!(score(&own) >= score(&majority));

    // Instant gratification vs the periodic crawl baseline.
    let mut crawl = CrawlBaseline::new(MangroveSchema::department(), 50);
    let visible_at = crawl.author_publish(&pages[0].url, &pages[0].html);
    println!(
        "\ncrawl baseline (interval 50): a publish now becomes visible at tick {visible_at}; \
         MANGROVE shows it immediately"
    );
    let mut ticks = 0;
    while crawl.store.is_empty() {
        crawl.tick();
        ticks += 1;
    }
    println!("...the crawler indeed needed {ticks} ticks");
    assert_eq!(ticks, 50);

    // Proactive inconsistency detection (§2.3): find the conflicts and
    // the authors to notify.
    let found = revere::mangrove::find_inconsistencies(&mangrove.store, &mangrove.schema);
    let notify = revere::mangrove::notifications_by_source(&found);
    println!(
        "\ninconsistency finder: {} conflicting single-valued facts across {} sources to notify",
        found.len(),
        notify.len()
    );
    for (source, incs) in notify.iter().take(3) {
        println!("  notify {source}: {} conflict(s)", incs.len());
    }

    // Strudel-style dynamic page generation (§2.3): compile the
    // department-wide summary, itself annotated and republishable.
    let summary = revere::mangrove::render_course_summary(
        &mangrove.store,
        &CleaningPolicy::Freshest,
    );
    let (stmts, issues) = revere::mangrove::extract_statements(&summary);
    println!(
        "\ndynamic course summary: {} bytes of annotated HTML, {} extractable facts, {} issues",
        summary.len(),
        stmts.len(),
        issues.len()
    );
    assert!(issues.is_empty());

    // An author fixes their page; the very next calendar render updates.
    let before = CourseCalendar::default().render(&mangrove.store);
    let course_page = pages.iter().find(|p| p.url.contains("/courses/")).expect("a course page");
    let moved = course_page.html.replace(
        course_page
            .truth
            .iter()
            .find(|(_, p, _)| p == "course.room")
            .map(|(_, _, v)| v.to_string())
            .expect("room fact")
            .as_str(),
        "Allen Center 305",
    );
    mangrove.publish(&course_page.url, &moved);
    let after = CourseCalendar::default().render(&mangrove.store);
    assert_ne!(before.rows(), after.rows(), "the room change is visible instantly");
    println!("room change published and instantly visible in the calendar");
    println!("\ndepartment_portal OK");
}
