//! Export a PDMS query as a Chrome trace.
//!
//! Builds a small faulty overlay, runs two queries with observability
//! enabled, prints the span tree and metrics to stderr, and writes the
//! Chrome trace-event JSON to stdout:
//!
//! ```text
//! cargo run --release --example chrome_trace > trace.json
//! ```
//!
//! then load `trace.json` in `chrome://tracing` or <https://ui.perfetto.dev>.
//! The timeline's clock is the deterministic tick clock (1 tick = 1 µs in
//! the viewer), so the same seed always renders the same picture.

use revere::prelude::*;
use revere::storage::Attribute;

fn main() {
    // A 10-peer random overlay, every edge a GLAV mapping, moderate chaos.
    let seed = std::env::var("REVERE_TRACE_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1003);
    let topology = Topology::generate(TopologyKind::Random { extra: 2 }, 10, seed);
    let mut net = PdmsNetwork::new();
    for i in 0..10 {
        let mut p = Peer::new(format!("P{i}"));
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![Attribute::text("title"), Attribute::int("enrollment")],
        ));
        for k in 0..3 {
            r.insert(vec![
                Value::str(format!("Course {k} at P{i}")),
                Value::Int((10 + i * 3 + k) as i64),
            ]);
        }
        p.add_relation(r);
        net.add_peer(p);
    }
    for (idx, (a, b)) in topology.edges.iter().enumerate() {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{idx}"),
                format!("P{a}"),
                format!("P{b}"),
                &format!("m(T, E) :- P{a}.course(T, E) ==> m(T, E) :- P{b}.course(T, E)"),
            )
            .expect("mapping parses"),
        );
    }
    net.faults = FaultPlan::new(FaultSpec::chaos(seed, 0.2));
    net.obs = Obs::enabled();

    for q in ["q(T, E) :- P0.course(T, E)", "q(T) :- P0.course(T, E), E > 20"] {
        let out = net.query_str("P0", q).expect("query runs");
        eprintln!(
            "{q}\n  -> {} answer(s), {} message(s), {}\n",
            out.answers.len(),
            out.messages,
            if out.completeness.is_complete() { "complete".to_string() } else {
                format!("PARTIAL ({})", out.completeness)
            }
        );
    }

    let tracer = net.obs.tracer().expect("obs enabled");
    eprintln!("span tree (ticks):\n{}", tracer.render_tree());
    eprintln!("metrics:\n{}", net.obs.metrics().expect("obs enabled").snapshot());
    println!("{}", tracer.chrome_trace());
}
