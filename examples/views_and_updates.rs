//! Materialized views, updategrams and data placement (§3.1.2).
//!
//! The paper's Piazza section sketches three run-time mechanisms beyond
//! query answering: materializing views at peers, maintaining them with
//! updategrams ("updates as first-class citizens"), and choosing between
//! incremental maintenance and recomputation "in a cost-based fashion".
//! This example runs all three on one network.
//!
//! Run with: `cargo run --release --example views_and_updates`

use revere::pdms::placement::{answer_with_plan, plan_placement, WorkloadEntry};
use revere::prelude::*;
use std::time::Instant;

fn main() {
    // A 5-peer chain, each peer holding 2k course rows.
    let mut net = PdmsNetwork::new();
    for i in 0..5 {
        let mut p = Peer::new(format!("P{i}"));
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![
                revere::storage::Attribute::text("title"),
                revere::storage::Attribute::int("enrollment"),
            ],
        ));
        for k in 0..2000 {
            r.insert(vec![
                Value::str(format!("C{k}@P{i}")),
                Value::Int(((k * 13 + i * 7) % 400) as i64),
            ]);
        }
        p.add_relation(r);
        net.add_peer(p);
    }
    for i in 1..5 {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{i}"),
                format!("P{}", i - 1),
                format!("P{i}"),
                &format!(
                    "m(T, E) :- P{}.course(T, E) ==> m(T, E) :- P{i}.course(T, E)",
                    i - 1
                ),
            )
            .expect("mapping parses"),
        );
    }

    // ------------------------------------------------------------------
    // 1. Data placement: P4's hot query gets its answer materialized.
    // ------------------------------------------------------------------
    let hot = parse_query("q(T, E) :- P4.course(T, E), E > 350").unwrap();
    let workload = vec![WorkloadEntry { peer: "P4".into(), query: hot.clone(), frequency: 50.0 }];
    let before = net.query("P4", &hot).expect("query runs");
    let plan = plan_placement(&net, &workload, 1_000_000);
    let (answers, messages) = answer_with_plan(&net, &plan, "P4", &hot).expect("planned query runs");
    println!(
        "placement: hot query cost {} messages / {} tuples shipped before; {} messages after \
         ({} placed tuples)",
        before.messages,
        before.tuples_shipped,
        messages,
        plan.placements.iter().map(|p| p.rows).sum::<usize>()
    );
    assert_eq!(messages, 0);
    assert_eq!(answers.len(), before.answers.len());

    // ------------------------------------------------------------------
    // 2. A materialized join view at P0, maintained by updategrams.
    // ------------------------------------------------------------------
    // The view joins P0's courses with a local "popular" side table.
    let mut catalog = Catalog::new();
    catalog.register(net.peer("P0").unwrap().storage.snapshot("P0.course").unwrap());
    let mut tags = Relation::new(RelSchema::new(
        "tags",
        vec![
            revere::storage::Attribute::int("enrollment"),
            revere::storage::Attribute::text("tag"),
        ],
    ));
    for e in 0..400 {
        tags.insert(vec![
            Value::Int(e),
            Value::str(if e > 300 { "huge" } else { "normal" }),
        ]);
    }
    catalog.register(tags);
    let def = parse_query("v(T, Tag) :- P0.course(T, E), tags(E, Tag)").unwrap();
    let mut view = MaterializedView::new("v", def);
    view.refresh_full(&catalog).expect("initial refresh");
    println!("\nview materialized: {} tuples, {} derivations", view.len(), view.total_derivations());

    // A burst of small updategrams: incremental is chosen and fast.
    let gram = Updategram {
        relation: "P0.course".into(),
        insert: vec![
            vec![Value::str("NewCourse1"), Value::Int(399)],
            vec![Value::str("NewCourse2"), Value::Int(10)],
        ],
        delete: vec![vec![Value::str("C0@P0"), Value::Int(0)]],
    };
    let start = Instant::now();
    let report = maintain(&mut catalog, &mut view, &[gram], None).expect("maintenance runs");
    println!(
        "small updategram: optimizer chose {:?} (est inc {} vs recompute {}), {} delta derivations, {:?}",
        report.choice, report.est_incremental, report.est_recompute, report.delta_derivations,
        start.elapsed()
    );
    assert_eq!(report.choice, MaintenanceChoice::Incremental);
    assert!(view.as_relation().contains(&vec![Value::str("NewCourse1"), Value::str("huge")]));

    // A bulk load: the optimizer flips to recomputation.
    let bulk = Updategram {
        relation: "P0.course".into(),
        insert: (0..20_000)
            .map(|k| vec![Value::str(format!("Bulk{k}")), Value::Int(k % 400)])
            .collect(),
        delete: Vec::new(),
    };
    let report = maintain(&mut catalog, &mut view, &[bulk], None).expect("maintenance runs");
    println!(
        "bulk updategram: optimizer chose {:?} (est inc {} vs recompute {})",
        report.choice, report.est_incremental, report.est_recompute
    );
    assert_eq!(report.choice, MaintenanceChoice::Recompute);

    // Consistency check: the view equals a fresh recompute.
    let mut fresh = MaterializedView::new("check", view.definition.clone());
    fresh.refresh_full(&catalog).unwrap();
    assert_eq!(view.as_relation().rows(), fresh.as_relation().rows());
    println!("view verified against full recompute: {} tuples", view.len());
    println!("\nviews_and_updates OK");
}
