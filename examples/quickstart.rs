//! Quickstart: the whole REVERE loop in one file.
//!
//! 1. Annotate an HTML course page (MANGROVE) and publish it.
//! 2. Serve it from an instant-gratification application.
//! 3. Share it through a two-peer PDMS, querying in the *other* peer's
//!    vocabulary.
//!
//! Run with: `cargo run --example quickstart`

use revere::mangrove::annotation::Annotator;
use revere::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Structure existing data: annotate a plain HTML page in place.
    // ------------------------------------------------------------------
    let raw_page = "<html><body>\
        <h1>Introduction to Databases</h1>\
        <p>Taught by Ada Lovelace, MWF 10:30 in Sieg 134.</p>\
        </body></html>";

    let mut annotator = Annotator::new(raw_page);
    annotator.set_subject("course/cse444");
    annotator.highlight("Introduction to Databases", "course.title");
    annotator.highlight("Ada Lovelace", "course.instructor");
    annotator.highlight("MWF 10:30", "course.time");
    annotator.highlight("Sieg 134", "course.room");
    let annotated = annotator.finish();

    let mut mangrove = Mangrove::new(MangroveSchema::department());
    let report = mangrove.publish("http://univ.edu/courses/cse444.html", &annotated);
    println!("published {} statements (undeclared tags: {:?})", report.stored, report.undeclared_tags);

    // ------------------------------------------------------------------
    // 2. Instant gratification: the calendar shows the course immediately.
    // ------------------------------------------------------------------
    let calendar = CourseCalendar::default().render(&mangrove.store);
    println!("\ndepartment calendar, rendered right after publish:\n{calendar}");

    // ------------------------------------------------------------------
    // 3. Share it: a two-peer PDMS with one GLAV mapping.
    // ------------------------------------------------------------------
    let mut uw = Peer::new("UW");
    let mut courses = Relation::new(RelSchema::text("course", &["title", "instructor"]));
    // Feed the published triples into UW's stored relation.
    for subject in mangrove.store.subjects_with("course.title") {
        let get = |p: &str| {
            mangrove
                .store
                .query((Some(subject), Some(p), None))
                .first()
                .map(|t| t.object.clone())
                .unwrap_or(Value::Null)
        };
        courses.insert(vec![get("course.title"), get("course.instructor")]);
    }
    uw.add_relation(courses);

    let mut mit = Peer::new("MIT");
    let mut subjects = Relation::new(RelSchema::text("subject", &["name", "lecturer"]));
    subjects.insert(vec![Value::str("6.830 Database Systems"), Value::str("Mike Stonebraker")]);
    mit.add_relation(subjects);

    let mut net = PdmsNetwork::new();
    net.add_peer(uw);
    net.add_peer(mit);
    net.add_mapping(
        GlavMapping::parse(
            "uw_mit",
            "UW",
            "MIT",
            "m(T, I) :- UW.course(T, I) ==> m(T, I) :- MIT.subject(T, I)",
        )
        .expect("mapping parses"),
    );

    // A student at MIT asks in MIT's vocabulary — and sees UW's course.
    let out = net
        .query_str("MIT", "q(Name, Lecturer) :- MIT.subject(Name, Lecturer)")
        .expect("query runs");
    println!("query at MIT, answers from the whole network:\n{}", out.answers);
    println!(
        "reformulated into {} disjunct(s), contacted peers {:?}, {} messages",
        out.reformulation.union.len(),
        out.peers_contacted,
        out.messages
    );
    assert_eq!(out.answers.len(), 2, "expected both universities' courses");
    println!("\nquickstart OK");
}
