//! Corpus tools: DesignAdvisor, MatchingAdvisor and keyword queries (§4).
//!
//! Builds a corpus of generated university schemas (with ground-truth
//! concept labels standing in for previously-confirmed mappings), trains
//! the multi-strategy classifiers, and then plays the paper's §4.3
//! scenarios: a coordinator authoring a new course schema with advisor
//! help, two unseen universities being matched, and a student querying an
//! unfamiliar schema with her own keywords.
//!
//! Run with: `cargo run --example schema_advisor`

use revere::corpus::corpus::KnownMapping;
use revere::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Build the corpus from 12 generated universities (training half gets
    // ground-truth labels, as if their mappings had been confirmed).
    // ------------------------------------------------------------------
    let gen = UniversityGenerator { seed: 77, rename_prob: 0.6, ..Default::default() };
    let universities = gen.generate(14);
    let (train, test) = universities.split_at(12);

    let mut corpus = Corpus::new();
    for u in train {
        let mut entry = CorpusEntry::schema_only(u.schema.clone());
        entry.data = u.data.clone();
        entry.labels = u
            .truth
            .attributes
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        entry.usage_count = 1 + u.name.len() % 5;
        corpus.add(entry);
    }
    // Record one known mapping between the first two entries, as the
    // paper's corpus keeps "known mappings between schemas in the corpus".
    let pairs = train[0].truth.correspondences(&train[1].truth);
    corpus.add_known_mapping(KnownMapping { left: 0, right: 1, pairs });

    println!(
        "corpus: {} schemas, {} labeled elements, {} known mappings",
        corpus.len(),
        corpus.labeled_elements().count(),
        corpus.known_mappings.len()
    );

    // Corpus statistics (§4.2).
    let stats = CorpusStats::compute(&corpus);
    println!("\n== similar names (distributional, no dictionary) ==");
    for term in ["title", "instructor", "phone"] {
        let sims: Vec<String> = stats
            .similar_names(term, 4)
            .into_iter()
            .map(|(t, s)| format!("{t} ({s:.2})"))
            .collect();
        println!("  {term:12} ~ {}", sims.join(", "));
    }

    // Composite statistics (§4.2.2): frequent partial structures, plus
    // estimated support for structures not worth maintaining exactly.
    let frequent = revere::corpus::composite::FrequentStructures::mine(&corpus, 4, 3);
    println!("\n== frequent partial structures (support >= 4) ==");
    for (set, n) in frequent.of_size(2).into_iter().take(4) {
        println!("  {{{}}} in {n} relations", set.iter().cloned().collect::<Vec<_>>().join(", "));
    }
    let est = frequent.support(&["title", "instructor", "room"]);
    println!("  estimated support of {{title, instructor, room}}: {:.1}", est.value());

    // ------------------------------------------------------------------
    // DesignAdvisor (§4.3.1): author a schema fragment, get completions.
    // ------------------------------------------------------------------
    let classifier = MultiStrategyClassifier::train(&corpus);
    println!(
        "\ntrained multi-strategy classifier: {} concepts, learner weights {:?}",
        classifier.labels().len(),
        classifier.weights
    );
    let advisor = DesignAdvisor::new(&corpus, MatchingAdvisor::new(classifier.clone()));

    let fragment = DbSchema::new("UW-draft").with(RelSchema::text("class", &["name", "teacher"]));
    let ranking = advisor.rank(&corpus, &fragment, &Catalog::new());
    println!("\n== DesignAdvisor ranking for fragment class(name, teacher) ==");
    for r in ranking.iter().take(3) {
        println!(
            "  {:8} sim={:.3} (fit {:.3}, preference {:.3}, {} mapped elements)",
            r.name, r.sim, r.fit, r.preference, r.mapped_elements
        );
    }
    let advice = advisor.advise(&corpus, &fragment, &Catalog::new(), 3);
    println!("== advice ==");
    for a in advice.iter().take(6) {
        println!("  {a:?}");
    }

    // ------------------------------------------------------------------
    // MatchingAdvisor (§4.3.2): match two *unseen* universities.
    // ------------------------------------------------------------------
    let (a, b) = (&test[0], &test[1]);
    let matcher = MatchingAdvisor::new(classifier.clone());
    let proposed = matcher.match_schemas(&a.schema, &a.data, &b.schema, &b.data);
    let truth = a.truth.correspondences(&b.truth);
    let quality = MatchQuality::evaluate(&proposed, &truth);
    println!(
        "\n== MatchingAdvisor on unseen pair {} vs {} ==",
        a.name, b.name
    );
    for c in proposed.iter().take(6) {
        println!(
            "  {}.{} ~ {}.{}  (confidence {:.2})",
            c.left.0, c.left.1, c.right.0, c.right.1, c.confidence
        );
    }
    println!(
        "accuracy {:.0}%  precision {:.0}%  recall {:.0}%  (paper's LSD: 70-90%)",
        quality.accuracy * 100.0,
        quality.precision * 100.0,
        quality.recall * 100.0
    );

    // ------------------------------------------------------------------
    // §4.4: querying an unfamiliar schema with the user's own words.
    // ------------------------------------------------------------------
    let reformulator = QueryReformulator::new(classifier);
    let proposals = reformulator.propose(&["title", "instructor"], &b.schema, &b.data);
    println!("\n== keyword query ['title', 'instructor'] over {}'s schema ==", b.name);
    for p in proposals.iter().take(3) {
        println!("  [{:.2}] {}", p.score, p.query);
    }
    assert!(!proposals.is_empty());
    println!("\nschema_advisor OK");
}
