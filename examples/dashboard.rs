//! Watch an overlay degrade on the live health dashboard.
//!
//! Stands up a 12-peer random overlay under light chaos (plus one
//! scheduled mid-run crash), drives a query workload from `P0` with a
//! [`Monitor`] scraping every peer each tick, and prints the final
//! cluster dashboard, the structured event log, and the merged metrics
//! rollup:
//!
//! ```text
//! cargo run --release --example dashboard
//! ```
//!
//! Everything is a pure function of `REVERE_E19_SEED` (default 1003):
//! the same seed always prints the same dashboard, byte for byte.

use revere::prelude::*;
use revere::storage::Attribute;
use revere::workload::course_templates;

fn main() {
    let seed = std::env::var("REVERE_E19_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1003);
    let n = 12usize;
    let ticks = 24u64;

    // A 12-peer random overlay, every edge a GLAV mapping.
    let topology = Topology::generate(TopologyKind::Random { extra: 2 }, n, seed);
    let mut net = PdmsNetwork::new();
    net.options.max_depth = n;
    for i in 0..n {
        let mut p = Peer::new(format!("P{i}"));
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![Attribute::text("title"), Attribute::int("enrollment")],
        ));
        for k in 0..3 {
            r.insert(vec![
                Value::str(format!("Course {k} at P{i}")),
                Value::Int((10 + i * 3 + k) as i64),
            ]);
        }
        p.add_relation(r);
        net.add_peer(p);
    }
    for (idx, (a, b)) in topology.edges.iter().enumerate() {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{idx}"),
                format!("P{a}"),
                format!("P{b}"),
                &format!("m(T, E) :- P{a}.course(T, E) ==> m(T, E) :- P{b}.course(T, E)"),
            )
            .expect("mapping parses"),
        );
    }

    // Light chaos, and the first healthy non-P0 peer crashes mid-run.
    let chaos = FaultPlan::new(FaultSpec::chaos(seed, 0.15));
    let victim = (1..n)
        .map(|i| format!("P{i}"))
        .find(|p| !chaos.is_down(p))
        .expect("someone survived the draw");
    eprintln!("scheduling crash of {victim} at tick {}", ticks / 2);
    net.faults = FaultPlan::new(FaultSpec::chaos(seed, 0.15).with_crash(victim, ticks / 2));

    // Drive the workload; the monitor scrapes once per query tick.
    let templates = course_templates("P0", 6);
    let mut mon = Monitor::default();
    for tick in 0..ticks {
        let q = &templates[tick as usize % templates.len()];
        net.query_str("P0", q).expect("query runs");
        mon.scrape(&net, tick);
    }

    println!("{}", mon.render_dashboard());
    println!("event log:");
    print!("{}", mon.event_log());
    println!();
    println!("cluster rollup (last {} windows):", mon.config().windows);
    print!("{}", mon.rollup());
}
